//! Chaitin-style graph-coloring register allocation — the paper's
//! baseline comparator for linear scan (§5.2: "In addition to this
//! register allocator, we also provide a Chaitin-style graph-coloring
//! register allocator … it is a good means of evaluating our simpler and
//! faster register allocation algorithm").
//!
//! The implementation builds a precise interference graph from
//! per-instruction liveness (more exact than live intervals — that
//! precision is exactly what costs time, which is the Figure 7 story),
//! then simplifies with Briggs-style optimistic coloring and spills by
//! lowest weight/degree.

use crate::alloc::{AllocLoc, Assignment, Pools};
use crate::flow::FlowGraph;
use crate::intervals::Interval;
use crate::ir::{IcodeBuf, VReg};
use crate::liveness::{BitSet, Liveness};
use tcc_rt::ValKind;

/// Runs the graph-coloring allocator.
pub fn graph_color(
    buf: &IcodeBuf,
    fg: &FlowGraph,
    lv: &Liveness,
    intervals: &[Interval],
    pools: &Pools,
) -> Assignment {
    let nv = buf.num_vregs();
    let mut adj: Vec<BitSet> = (0..nv).map(|_| BitSet::new(nv)).collect();
    let mut degree = vec![0u32; nv];
    let mut present = vec![false; nv];

    let add_edge = |adj: &mut Vec<BitSet>, degree: &mut Vec<u32>, a: usize, b: usize| {
        if a != b && !adj[a].contains(b) {
            adj[a].insert(b);
            adj[b].insert(a);
            degree[a] += 1;
            degree[b] += 1;
        }
    };

    // Build interference: walk blocks backward from live-out.
    for (bi, blk) in fg.blocks.iter().enumerate() {
        let mut live = lv.live_out[bi].clone();
        for insn in buf.insns[blk.start..blk.end].iter().rev() {
            if let Some(d) = insn.def() {
                present[d.0 as usize] = true;
                let di = d.0 as usize;
                let live_now: Vec<usize> = live.iter().collect();
                let d_float = buf.vreg_kinds[di] == ValKind::F;
                for l in live_now {
                    // Interference only matters within a register bank.
                    if (buf.vreg_kinds[l] == ValKind::F) == d_float {
                        add_edge(&mut adj, &mut degree, di, l);
                    }
                }
                live.remove(di);
            }
            for u in insn.uses().into_iter().flatten() {
                present[u.0 as usize] = true;
                live.insert(u.0 as usize);
            }
        }
    }

    let crosses: Vec<bool> = {
        let mut c = vec![false; nv];
        for iv in intervals {
            c[iv.vreg.0 as usize] = iv.crosses_call;
        }
        c
    };
    let weight: Vec<u64> = {
        let mut w = vec![1u64; nv];
        for iv in intervals {
            w[iv.vreg.0 as usize] = iv.weight.max(1);
        }
        w
    };

    let k_of = |v: usize| -> usize {
        let float = buf.vreg_kinds[v] == ValKind::F;
        match (float, crosses[v]) {
            (false, false) => pools.int_total(),
            (false, true) => pools.int_callee.len(),
            (true, false) => pools.float_total(),
            (true, true) => pools.f_callee.len(),
        }
    };

    // Simplify: push removable nodes; when stuck, pick a spill candidate
    // optimistically.
    let mut stack: Vec<usize> = Vec::new();
    let mut removed = vec![false; nv];
    let mut remaining: Vec<usize> = (0..nv).filter(|&v| present[v]).collect();
    let mut deg = degree.clone();
    while !remaining.is_empty() {
        let pos = remaining.iter().position(|&v| (deg[v] as usize) < k_of(v));
        let v = match pos {
            Some(p) => remaining.remove(p),
            None => {
                // Spill heuristic: lowest weight / (degree + 1).
                let (p, _) = remaining
                    .iter()
                    .enumerate()
                    .min_by(|(_, &a), (_, &b)| {
                        let fa = weight[a] as f64 / (deg[a] as f64 + 1.0);
                        let fb = weight[b] as f64 / (deg[b] as f64 + 1.0);
                        fa.partial_cmp(&fb).expect("weights are finite")
                    })
                    .expect("remaining nonempty");
                remaining.remove(p)
            }
        };
        removed[v] = true;
        for n in adj[v].iter() {
            if !removed[n] {
                deg[n] = deg[n].saturating_sub(1);
            }
        }
        stack.push(v);
    }

    // Select: pop and color.
    let mut asn = Assignment::new(nv);
    while let Some(v) = stack.pop() {
        let float = buf.vreg_kinds[v] == ValKind::F;
        // Build the candidate register order: callee-saved first when the
        // node crosses calls (mandatory), otherwise caller-saved first.
        let candidates: Vec<AllocLoc> = if float {
            let mut c: Vec<AllocLoc> = Vec::new();
            if !crosses[v] {
                c.extend(pools.f_caller.iter().map(|&f| AllocLoc::F(f)));
            }
            c.extend(pools.f_callee.iter().map(|&f| AllocLoc::F(f)));
            c
        } else {
            let mut c: Vec<AllocLoc> = Vec::new();
            if !crosses[v] {
                c.extend(pools.int_caller.iter().map(|&r| AllocLoc::R(r)));
            }
            c.extend(pools.int_callee.iter().map(|&r| AllocLoc::R(r)));
            c
        };
        let taken: Vec<AllocLoc> = adj[v].iter().filter_map(|n| asn.locs[n]).collect();
        match candidates.into_iter().find(|c| !taken.contains(c)) {
            Some(reg) => asn.set(VReg(v as u32), reg),
            None => {
                let slot = if float {
                    asn.new_fslot()
                } else {
                    asn.new_slot()
                };
                asn.set(VReg(v as u32), slot);
            }
        }
    }
    asn
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::intervals::build_intervals;
    use crate::linear_scan::check_no_overlap_conflicts;
    use tcc_vcode::ops::BinOp;
    use tcc_vcode::CodeSink;

    fn allocate(buf: &IcodeBuf, pools: &Pools) -> (Assignment, Vec<Interval>) {
        let fg = FlowGraph::build(buf);
        let lv = Liveness::solve(buf, &fg);
        let ivs = build_intervals(buf, &fg, &lv);
        (graph_color(buf, &fg, &lv, &ivs, pools), ivs)
    }

    #[test]
    fn simple_program_colors_without_spills() {
        let mut b = IcodeBuf::new();
        let x = b.param(0, ValKind::W);
        let y = b.temp(ValKind::W);
        b.li(y, 3);
        b.bin(BinOp::Mul, ValKind::W, y, y, x);
        b.ret_val(ValKind::W, y);
        let (asn, ivs) = allocate(&b, &Pools::full());
        assert_eq!(asn.spilled, 0);
        assert!(check_no_overlap_conflicts(&ivs, &asn).is_none());
    }

    #[test]
    fn high_pressure_spills_low_weight_nodes() {
        let mut b = IcodeBuf::new();
        // 25 simultaneously live values with only 8 registers.
        let vals: Vec<_> = (0..25).map(|_| b.temp(ValKind::W)).collect();
        for (i, &v) in vals.iter().enumerate() {
            b.li(v, i as i64);
        }
        let acc = b.temp(ValKind::W);
        b.li(acc, 0);
        for &v in &vals {
            b.bin(BinOp::Add, ValKind::W, acc, acc, v);
        }
        b.ret_val(ValKind::W, acc);
        let (asn, _ivs) = allocate(&b, &Pools::with_int_limit(8));
        assert!(asn.spilled > 0, "must spill under pressure");
        assert!(asn.spilled <= 20, "should keep several in registers");
    }

    #[test]
    fn interference_edges_respected() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let y = b.temp(ValKind::W);
        let z = b.temp(ValKind::W);
        b.li(x, 1);
        b.li(y, 2);
        b.li(z, 3);
        b.bin(BinOp::Add, ValKind::W, x, x, y);
        b.bin(BinOp::Add, ValKind::W, x, x, z);
        b.ret_val(ValKind::W, x);
        let (asn, ivs) = allocate(&b, &Pools::full());
        assert!(check_no_overlap_conflicts(&ivs, &asn).is_none());
        // x, y, z all overlap pairwise: three distinct registers.
        let locs = [asn.loc(x), asn.loc(y), asn.loc(z)];
        assert_ne!(locs[0], locs[1]);
        assert_ne!(locs[0], locs[2]);
        assert_ne!(locs[1], locs[2]);
    }

    #[test]
    fn call_crossing_nodes_take_callee_saved() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        b.li(x, 7);
        b.call_addr(0x8000_0000, &[], None);
        b.ret_val(ValKind::W, x);
        let (asn, _) = allocate(&b, &Pools::full());
        match asn.loc(x) {
            AllocLoc::R(r) => assert!(tcc_vm::regs::SAVED_REGS.contains(&r)),
            AllocLoc::Slot(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}
