//! The link-time translator-pruning analysis.
//!
//! Paper §5.2: "ICODE has several hundred instructions (the cross product
//! of operation kinds and operand types), and the code to translate and
//! peephole-optimize each instruction is on the order of 100
//! instructions … tcc therefore keeps track of the ICODE instructions
//! used by an application, and automatically creates a customized ICODE
//! back end containing code to only translate the required instructions
//! … This simple trick cuts the size of the ICODE library by up to an
//! order of magnitude for most programs."
//!
//! Here the translator is a keyed dispatch table; the *full* table holds
//! one entry per (operation, value-kind) combination, and
//! [`TranslatorTable::pruned_for`] retains only the combinations a
//! program actually emits. The emitter refuses to translate instructions
//! missing from its table, so the pruning analysis is load-bearing, and
//! the ablation bench reports the size reduction.

use crate::ir::{IInsn, IOp, IcodeBuf};
use std::collections::BTreeSet;
use tcc_rt::ValKind;
use tcc_vcode::ops::{BinOp, LoadKind, StoreKind, UnOp};

/// A translator key: one per (operation, kind) combination.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpKey {
    cat: u8,
    sub: u8,
    kind: u8,
}

/// Nominal instruction count of one translator entry (paper: "on the
/// order of 100 instructions").
pub const ENTRY_NOMINAL_INSNS: usize = 100;

/// Derives the translator key of an instruction.
pub fn key_of(insn: &IInsn) -> OpKey {
    let (cat, sub): (u8, u8) = match insn.op {
        IOp::Li => (0, 0),
        IOp::Lif => (1, 0),
        IOp::Bin(b) => (2, bin_idx(b)),
        IOp::BinImm(b) => (3, bin_idx(b)),
        IOp::Un(u) => (4, un_idx(u)),
        IOp::Load(l) => (5, load_idx(l)),
        IOp::Store(s) => (6, store_idx(s)),
        IOp::Label => (7, 0),
        IOp::Jmp => (8, 0),
        IOp::BrCmp(b) => (9, bin_idx(b)),
        IOp::BrTrue => (10, 0),
        IOp::BrFalse => (11, 0),
        IOp::Arg(_) => (12, 0),
        IOp::CallAddr => (13, 0),
        IOp::CallInd => (14, 0),
        IOp::Hcall => (15, 0),
        IOp::Ret => (16, 0),
        IOp::GetParam(_) => (17, 0),
        IOp::LoopBegin | IOp::LoopEnd => (18, 0),
        IOp::FrameAddr => (19, 0),
    };
    OpKey {
        cat,
        sub,
        kind: insn.k.code(),
    }
}

fn bin_idx(b: BinOp) -> u8 {
    use BinOp::*;
    [
        Add, Sub, Mul, Div, DivU, Rem, RemU, And, Or, Xor, Shl, Shr, ShrU, Eq, Ne, Lt, LtU, Le,
        LeU, Gt, GtU, Ge, GeU,
    ]
    .iter()
    .position(|&x| x == b)
    .expect("all binops enumerated") as u8
}

fn un_idx(u: UnOp) -> u8 {
    use UnOp::*;
    [Neg, Not, Mov, CvtWtoF, CvtFtoW, CvtLtoF, CvtFtoL]
        .iter()
        .position(|&x| x == u)
        .expect("all unops enumerated") as u8
}

fn load_idx(l: LoadKind) -> u8 {
    use LoadKind::*;
    [I8, U8, I16, U16, I32, U32, I64, F64]
        .iter()
        .position(|&x| x == l)
        .expect("all load kinds enumerated") as u8
}

fn store_idx(s: StoreKind) -> u8 {
    use StoreKind::*;
    [I8, I16, I32, I64, F64]
        .iter()
        .position(|&x| x == s)
        .expect("enumerated") as u8
}

/// A translator dispatch table (full or pruned).
#[derive(Clone, Debug)]
pub struct TranslatorTable {
    keys: BTreeSet<OpKey>,
}

impl TranslatorTable {
    /// The full cross product: every operation at every kind it supports.
    pub fn full() -> TranslatorTable {
        let mut keys = BTreeSet::new();
        let kinds = [ValKind::W, ValKind::D, ValKind::P, ValKind::F];
        for kind in kinds {
            for cat in 0u8..20 {
                let subs: u8 = match cat {
                    2 | 3 | 9 => 23,
                    4 => 7,
                    5 => 8,
                    6 => 5,
                    _ => 1,
                };
                for sub in 0..subs {
                    keys.insert(OpKey {
                        cat,
                        sub,
                        kind: kind.code(),
                    });
                }
            }
        }
        TranslatorTable { keys }
    }

    /// The pruned table for a set of ICODE buffers (the "link-time"
    /// analysis runs over every dynamic code site in the program).
    pub fn pruned_for<'a>(bufs: impl IntoIterator<Item = &'a IcodeBuf>) -> TranslatorTable {
        TranslatorTable::from_keys(bufs.into_iter().flat_map(|b| b.insns.iter().map(key_of)))
    }

    /// A table containing exactly `keys`.
    pub fn from_keys(keys: impl IntoIterator<Item = OpKey>) -> TranslatorTable {
        TranslatorTable {
            keys: keys.into_iter().collect(),
        }
    }

    /// Number of translator entries.
    pub fn entries(&self) -> usize {
        self.keys.len()
    }

    /// Nominal code size (instructions) of the translator.
    pub fn nominal_size(&self) -> usize {
        self.entries() * ENTRY_NOMINAL_INSNS
    }

    /// True if the table can translate `insn`.
    pub fn supports(&self, insn: &IInsn) -> bool {
        self.keys.contains(&key_of(insn))
    }
}

impl Default for TranslatorTable {
    fn default() -> Self {
        TranslatorTable::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_vcode::CodeSink;

    #[test]
    fn full_table_has_several_hundred_entries() {
        let t = TranslatorTable::full();
        assert!(t.entries() > 300, "got {}", t.entries());
        assert!(t.nominal_size() > 30_000);
    }

    #[test]
    fn pruned_table_is_an_order_of_magnitude_smaller_for_small_programs() {
        let mut b = IcodeBuf::new();
        let x = b.param(0, ValKind::W);
        let y = b.temp(ValKind::W);
        b.li(y, 3);
        b.bin(BinOp::Mul, ValKind::W, y, y, x);
        b.ret_val(ValKind::W, y);
        let full = TranslatorTable::full();
        let pruned = TranslatorTable::pruned_for([&b]);
        assert!(pruned.entries() * 10 <= full.entries());
        for insn in &b.insns {
            assert!(pruned.supports(insn));
        }
    }

    #[test]
    fn pruned_table_rejects_unused_ops() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.ret_val(ValKind::W, x);
        let pruned = TranslatorTable::pruned_for([&b]);
        let mut other = IcodeBuf::new();
        let f = other.temp(ValKind::F);
        other.lif(f, 1.0);
        assert!(!pruned.supports(&other.insns[0]));
    }

    #[test]
    fn keys_are_stable_per_op_and_kind() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let y = b.temp(ValKind::D);
        b.bin(BinOp::Add, ValKind::W, x, x, x);
        b.bin(BinOp::Add, ValKind::D, y, y, y);
        b.bin(BinOp::Add, ValKind::W, x, x, x);
        let k0 = key_of(&b.insns[0]);
        let k1 = key_of(&b.insns[1]);
        let k2 = key_of(&b.insns[2]);
        assert_eq!(k0, k2);
        assert_ne!(k0, k1);
    }
}
