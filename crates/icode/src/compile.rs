//! The ICODE dynamic compilation pipeline (paper §5.2).
//!
//! "When compile is invoked in ICODE mode, ICODE builds a flow graph,
//! identifies live ranges, employs a linear-time algorithm to perform
//! register allocation, and performs some peephole optimizations.
//! Finally, it translates the intermediate representation to the target
//! machine's binary format. We have attempted to minimize the cost of
//! each of these operations."
//!
//! Each phase is timed individually — that per-phase breakdown is Figure
//! 7 of the paper (where register allocation and liveness account for
//! 70-80% of ICODE's code generation cost).

use crate::alloc::{Assignment, Pools};
use crate::color::graph_color;
use crate::emit::emit;
use crate::flow::FlowGraph;
use crate::intervals::build_intervals;
use crate::ir::IcodeBuf;
use crate::linear_scan::linear_scan;
use crate::liveness::Liveness;
use crate::peephole::{dead_code, schedule_for_fusion, thread_jumps};
use crate::prune::TranslatorTable;
use std::time::Instant;
use tcc_vcode::FinishedFunc;
use tcc_vm::CodeSpace;

/// Register allocation strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Strategy {
    /// The paper's fast linear scan (Figure 3).
    #[default]
    LinearScan,
    /// The Chaitin-style graph-coloring baseline.
    GraphColor,
}

/// Per-phase wall-clock nanoseconds (the Figure 7 breakdown).
///
/// The definition lives in the observability crate so the runtime and
/// the suite can accumulate it without depending on ICODE internals;
/// this alias keeps the historical `tcc_icode::Phases` name working.
pub use tcc_obs::CodegenPhases as Phases;

/// Result of one ICODE compilation.
#[derive(Clone, Debug)]
pub struct IcodeResult {
    /// The generated function.
    pub func: FinishedFunc,
    /// Per-phase timing.
    pub phases: Phases,
    /// Number of spilled live intervals.
    pub spills: u32,
    /// IR instructions after cleanup.
    pub ir_len: usize,
    /// Basic block count.
    pub blocks: usize,
    /// Live interval count.
    pub intervals: usize,
}

/// The ICODE back-end compiler: configuration + the `compile`
/// entry point.
#[derive(Clone, Debug)]
pub struct IcodeCompiler {
    /// Allocation strategy (linear scan vs graph coloring).
    pub strategy: Strategy,
    /// Whether to run the IR cleanup passes.
    pub run_peephole: bool,
    /// Whether the peephole stage also runs the fusion-aware scheduler
    /// (sinks pure defs onto branches/consumers so the VM's
    /// superinstruction pairer finds more adjacencies). Independent
    /// knob so the fused-pair gain is measurable.
    pub schedule_fusion: bool,
    /// Allocatable register pools.
    pub pools: Pools,
    /// Translator table (full by default; prune for the ablation).
    pub table: TranslatorTable,
}

impl Default for IcodeCompiler {
    fn default() -> Self {
        IcodeCompiler::new(Strategy::LinearScan)
    }
}

impl IcodeCompiler {
    /// A compiler with the given strategy, full pools and full table.
    pub fn new(strategy: Strategy) -> IcodeCompiler {
        IcodeCompiler {
            strategy,
            run_peephole: true,
            schedule_fusion: true,
            pools: Pools::full(),
            table: TranslatorTable::full(),
        }
    }

    /// Compiles an ICODE buffer into executable code.
    pub fn compile(&self, code: &mut CodeSpace, name: &str, mut buf: IcodeBuf) -> IcodeResult {
        let mut phases = Phases::default();

        let t = Instant::now();
        if self.run_peephole {
            dead_code(&mut buf);
            thread_jumps(&mut buf);
            if self.schedule_fusion {
                schedule_for_fusion(&mut buf);
            }
        }
        phases.peephole_ns = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let fg = FlowGraph::build(&buf);
        phases.flow_ns = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let lv = Liveness::solve(&buf, &fg);
        phases.liveness_ns = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let ivs = build_intervals(&buf, &fg, &lv);
        phases.intervals_ns = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let asn: Assignment = match self.strategy {
            Strategy::LinearScan => linear_scan(&ivs, buf.num_vregs(), &self.pools),
            Strategy::GraphColor => graph_color(&buf, &fg, &lv, &ivs, &self.pools),
        };
        phases.alloc_ns = t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        let func = emit(code, name, &buf, &asn, &self.table);
        phases.emit_ns = t.elapsed().as_nanos() as u64;

        IcodeResult {
            func,
            phases,
            spills: asn.spilled,
            ir_len: buf.insns.len(),
            blocks: fg.len(),
            intervals: ivs.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_rt::ValKind;
    use tcc_vcode::ops::BinOp;
    use tcc_vcode::CodeSink;
    use tcc_vm::Vm;

    fn sum_to_n_buf() -> IcodeBuf {
        // f(n) = sum 1..=n
        let mut b = IcodeBuf::new();
        let n = b.param(0, ValKind::W);
        let s = b.temp(ValKind::W);
        let i = b.temp(ValKind::W);
        b.li(s, 0);
        b.li(i, 1);
        let top = b.label();
        let done = b.label();
        b.loop_begin();
        b.bind(top);
        b.br_cmp(BinOp::Gt, ValKind::W, i, n, done);
        b.bin(BinOp::Add, ValKind::W, s, s, i);
        b.bin_imm(BinOp::Add, ValKind::W, i, i, 1);
        b.jmp(top);
        b.loop_end();
        b.bind(done);
        b.ret_val(ValKind::W, s);
        b
    }

    #[test]
    fn both_strategies_compile_and_agree() {
        for strategy in [Strategy::LinearScan, Strategy::GraphColor] {
            let mut code = CodeSpace::new();
            let c = IcodeCompiler::new(strategy);
            let r = c.compile(&mut code, "sum", sum_to_n_buf());
            let mut vm = Vm::new(code, 1 << 20);
            assert_eq!(vm.call(r.func.addr, &[100]).unwrap(), 5050, "{strategy:?}");
            assert_eq!(r.spills, 0);
            assert!(r.blocks >= 3);
        }
    }

    #[test]
    fn high_pressure_program_spills_but_stays_correct() {
        // 30 simultaneously live values.
        let mut b = IcodeBuf::new();
        let vals: Vec<_> = (0..30).map(|_| b.temp(ValKind::W)).collect();
        for (i, &v) in vals.iter().enumerate() {
            b.li(v, (i * i) as i64);
        }
        let acc = b.temp(ValKind::W);
        b.li(acc, 0);
        for &v in &vals {
            b.bin(BinOp::Add, ValKind::W, acc, acc, v);
        }
        b.ret_val(ValKind::W, acc);

        let expect: u64 = (0..30).map(|i| (i * i) as u64).sum();
        for strategy in [Strategy::LinearScan, Strategy::GraphColor] {
            let mut code = CodeSpace::new();
            let c = IcodeCompiler::new(strategy);
            let r = c.compile(&mut code, "pressure", b.clone());
            assert!(r.spills > 0, "{strategy:?} should spill");
            let mut vm = Vm::new(code, 1 << 20);
            assert_eq!(vm.call(r.func.addr, &[]).unwrap(), expect, "{strategy:?}");
        }
    }

    #[test]
    fn phase_breakdown_is_populated() {
        let mut code = CodeSpace::new();
        let c = IcodeCompiler::default();
        let r = c.compile(&mut code, "sum", sum_to_n_buf());
        assert!(r.phases.total_ns() > 0);
        assert!(r.ir_len > 0);
        assert!(r.intervals >= 3);
    }

    #[test]
    fn peephole_shrinks_ir() {
        let mut b = sum_to_n_buf();
        let dead = b.temp(ValKind::W);
        b.li(dead, 42); // appended after ret; dead
        let mut code = CodeSpace::new();
        let c = IcodeCompiler::default();
        let r = c.compile(&mut code, "sum", b);
        let mut code2 = CodeSpace::new();
        let c2 = IcodeCompiler {
            run_peephole: false,
            ..IcodeCompiler::default()
        };
        let b2 = {
            let mut b = sum_to_n_buf();
            let dead = b.temp(ValKind::W);
            b.li(dead, 42);
            b
        };
        let r2 = c2.compile(&mut code2, "sum", b2);
        assert!(r.ir_len < r2.ir_len);
    }
}
