//! The ICODE intermediate representation.
//!
//! ICODE "provides an interface similar to that of VCODE, with two main
//! extensions: (1) an infinite number of registers, and (2) primitives to
//! express changes in estimated usage frequency of code" (§5.2). The
//! builder here records one [`IInsn`] per operation into a flat buffer;
//! the representation is designed to be compact and trivially parseable
//! so the later passes stay cheap (the paper packs two 4-byte words per
//! instruction; we keep a fixed-size POD struct with the same flavor).

use tcc_rt::ValKind;
use tcc_vcode::ops::{BinOp, LoadKind, StoreKind, UnOp};
use tcc_vcode::CodeSink;

/// A virtual register. ICODE clients "emit code that assumes no spills,
/// leaving the work of global, inter-cspec register allocation to ICODE".
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VReg(pub u32);

impl VReg {
    /// Sentinel for "no register" (absent destination or operand).
    pub const NONE: VReg = VReg(u32::MAX);

    /// True if this is a real register.
    pub fn is_some(self) -> bool {
        self != VReg::NONE
    }
}

/// A label handle inside an [`IcodeBuf`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LblId(pub u32);

/// ICODE operations. The `imm` field of [`IInsn`] carries the immediate,
/// the label id, the call target address, or the host call number,
/// depending on the operation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IOp {
    /// `dst <- imm`.
    Li,
    /// `dst <- f64::from_bits(imm)`.
    Lif,
    /// `dst <- a op b`.
    Bin(BinOp),
    /// `dst <- a op imm` (strength-reduced at emission).
    BinImm(BinOp),
    /// `dst <- op a`.
    Un(UnOp),
    /// `dst <- mem[a + imm]`.
    Load(LoadKind),
    /// `mem[a + imm] <- b`.
    Store(StoreKind),
    /// Marks label `imm`.
    Label,
    /// Jump to label `imm`.
    Jmp,
    /// `if (a op b) goto imm`.
    BrCmp(BinOp),
    /// `if (a != 0) goto imm`.
    BrTrue,
    /// `if (a == 0) goto imm`.
    BrFalse,
    /// Passes `a` as argument number `0` (position in the field) of the
    /// upcoming call; integer and float positions are numbered
    /// separately.
    Arg(u8),
    /// Direct call; `imm` is the code address, `dst` the result (or
    /// [`VReg::NONE`]).
    CallAddr,
    /// Indirect call through `a`.
    CallInd,
    /// Host call `imm`.
    Hcall,
    /// Return `a` (or [`VReg::NONE`] for void).
    Ret,
    /// `dst <- parameter i` (must precede any call).
    GetParam(u8),
    /// `dst <- address of frame block imm` (local arrays/structs and
    /// address-taken locals).
    FrameAddr,
    /// Usage-frequency hint: loop entry (weights below are scaled up).
    LoopBegin,
    /// Usage-frequency hint: loop exit.
    LoopEnd,
}

/// One ICODE instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct IInsn {
    /// Operation.
    pub op: IOp,
    /// Value kind the operation works at.
    pub k: ValKind,
    /// Destination virtual register (or [`VReg::NONE`]).
    pub dst: VReg,
    /// First operand.
    pub a: VReg,
    /// Second operand.
    pub b: VReg,
    /// Immediate / label id / call address / host call number.
    pub imm: i64,
}

impl IInsn {
    /// The virtual register this instruction defines, if any.
    pub fn def(&self) -> Option<VReg> {
        if self.dst.is_some() {
            Some(self.dst)
        } else {
            None
        }
    }

    /// The virtual registers this instruction uses (0, 1 or 2).
    pub fn uses(&self) -> [Option<VReg>; 2] {
        let a = if self.a.is_some() { Some(self.a) } else { None };
        let b = if self.b.is_some() { Some(self.b) } else { None };
        [a, b]
    }

    /// True for instructions that end a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self.op,
            IOp::Jmp | IOp::BrCmp(_) | IOp::BrTrue | IOp::BrFalse | IOp::Ret
        )
    }
}

/// The ICODE instruction buffer a CGF fills at dynamic compile time.
#[derive(Clone, Debug, Default)]
pub struct IcodeBuf {
    /// The recorded instructions.
    pub insns: Vec<IInsn>,
    /// Kind of each virtual register, indexed by number.
    pub vreg_kinds: Vec<ValKind>,
    /// Number of labels created.
    pub nlabels: u32,
    /// Sizes (bytes) of frame blocks for addressable locals.
    pub frame_blocks: Vec<u64>,
    max_param: u8,
}

impl IcodeBuf {
    /// Creates an empty buffer.
    pub fn new() -> IcodeBuf {
        IcodeBuf::default()
    }

    /// Allocates a fresh virtual register of kind `k`.
    pub fn vreg(&mut self, k: ValKind) -> VReg {
        self.vreg_kinds.push(k);
        VReg(self.vreg_kinds.len() as u32 - 1)
    }

    /// Kind of `v`.
    pub fn kind_of(&self, v: VReg) -> ValKind {
        self.vreg_kinds[v.0 as usize]
    }

    /// Number of virtual registers allocated.
    pub fn num_vregs(&self) -> usize {
        self.vreg_kinds.len()
    }

    /// Highest parameter index referenced (for prologue setup).
    pub fn max_param(&self) -> u8 {
        self.max_param
    }

    fn push(&mut self, i: IInsn) {
        self.insns.push(i);
    }

    /// Reserves a frame block of `size` bytes; returns its index.
    pub fn frame_block(&mut self, size: u64) -> usize {
        self.frame_blocks.push(size);
        self.frame_blocks.len() - 1
    }

    /// `dst <- address of frame block `block``.
    pub fn frame_addr(&mut self, dst: VReg, block: usize) {
        self.push(IInsn {
            op: IOp::FrameAddr,
            k: tcc_rt::ValKind::P,
            dst,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: block as i64,
        });
    }
}

impl CodeSink for IcodeBuf {
    type Val = VReg;
    type Lbl = LblId;

    fn temp(&mut self, k: ValKind) -> VReg {
        self.vreg(k)
    }

    fn temp_saved(&mut self, k: ValKind) -> VReg {
        // The allocator decides; the hint is unnecessary with global
        // information (the point of ICODE).
        self.vreg(k)
    }

    fn release(&mut self, _v: VReg) {}

    fn param(&mut self, i: usize, k: ValKind) -> VReg {
        let dst = self.vreg(k);
        self.max_param = self.max_param.max(i as u8 + 1);
        self.push(IInsn {
            op: IOp::GetParam(i as u8),
            k,
            dst,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: 0,
        });
        dst
    }

    fn li(&mut self, dst: VReg, v: i64) {
        let k = self.kind_of(dst);
        self.push(IInsn {
            op: IOp::Li,
            k,
            dst,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: v,
        });
    }

    fn lif(&mut self, dst: VReg, v: f64) {
        self.push(IInsn {
            op: IOp::Lif,
            k: ValKind::F,
            dst,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: v.to_bits() as i64,
        });
    }

    fn bin(&mut self, op: BinOp, k: ValKind, dst: VReg, a: VReg, b: VReg) {
        self.push(IInsn {
            op: IOp::Bin(op),
            k,
            dst,
            a,
            b,
            imm: 0,
        });
    }

    fn bin_imm(&mut self, op: BinOp, k: ValKind, dst: VReg, a: VReg, imm: i64) {
        self.push(IInsn {
            op: IOp::BinImm(op),
            k,
            dst,
            a,
            b: VReg::NONE,
            imm,
        });
    }

    fn un(&mut self, op: UnOp, k: ValKind, dst: VReg, a: VReg) {
        self.push(IInsn {
            op: IOp::Un(op),
            k,
            dst,
            a,
            b: VReg::NONE,
            imm: 0,
        });
    }

    fn load(&mut self, lk: LoadKind, dst: VReg, base: VReg, off: i64) {
        self.push(IInsn {
            op: IOp::Load(lk),
            k: lk.result_kind(),
            dst,
            a: base,
            b: VReg::NONE,
            imm: off,
        });
    }

    fn store(&mut self, sk: StoreKind, val: VReg, base: VReg, off: i64) {
        self.push(IInsn {
            op: IOp::Store(sk),
            k: sk.value_kind(),
            dst: VReg::NONE,
            a: base,
            b: val,
            imm: off,
        });
    }

    fn label(&mut self) -> LblId {
        self.nlabels += 1;
        LblId(self.nlabels - 1)
    }

    fn bind(&mut self, l: LblId) {
        self.push(IInsn {
            op: IOp::Label,
            k: ValKind::W,
            dst: VReg::NONE,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: l.0 as i64,
        });
    }

    fn jmp(&mut self, l: LblId) {
        self.push(IInsn {
            op: IOp::Jmp,
            k: ValKind::W,
            dst: VReg::NONE,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: l.0 as i64,
        });
    }

    fn br_cmp(&mut self, op: BinOp, k: ValKind, a: VReg, b: VReg, l: LblId) {
        self.push(IInsn {
            op: IOp::BrCmp(op),
            k,
            dst: VReg::NONE,
            a,
            b,
            imm: l.0 as i64,
        });
    }

    fn br_true(&mut self, a: VReg, l: LblId) {
        let k = self.kind_of(a);
        self.push(IInsn {
            op: IOp::BrTrue,
            k,
            dst: VReg::NONE,
            a,
            b: VReg::NONE,
            imm: l.0 as i64,
        });
    }

    fn br_false(&mut self, a: VReg, l: LblId) {
        let k = self.kind_of(a);
        self.push(IInsn {
            op: IOp::BrFalse,
            k,
            dst: VReg::NONE,
            a,
            b: VReg::NONE,
            imm: l.0 as i64,
        });
    }

    fn call_addr(&mut self, addr: u64, args: &[(ValKind, VReg)], ret: Option<(ValKind, VReg)>) {
        self.push_args(args);
        let (k, dst) = ret.map_or((ValKind::W, VReg::NONE), |(k, v)| (k, v));
        self.push(IInsn {
            op: IOp::CallAddr,
            k,
            dst,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: addr as i64,
        });
    }

    fn call_ind(&mut self, target: VReg, args: &[(ValKind, VReg)], ret: Option<(ValKind, VReg)>) {
        self.push_args(args);
        let (k, dst) = ret.map_or((ValKind::W, VReg::NONE), |(k, v)| (k, v));
        self.push(IInsn {
            op: IOp::CallInd,
            k,
            dst,
            a: target,
            b: VReg::NONE,
            imm: 0,
        });
    }

    fn hcall(&mut self, num: u32, args: &[(ValKind, VReg)], ret: Option<(ValKind, VReg)>) {
        self.push_args(args);
        let (k, dst) = ret.map_or((ValKind::W, VReg::NONE), |(k, v)| (k, v));
        self.push(IInsn {
            op: IOp::Hcall,
            k,
            dst,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: num as i64,
        });
    }

    fn ret_val(&mut self, k: ValKind, v: VReg) {
        self.push(IInsn {
            op: IOp::Ret,
            k,
            dst: VReg::NONE,
            a: v,
            b: VReg::NONE,
            imm: 0,
        });
    }

    fn ret_void(&mut self) {
        self.push(IInsn {
            op: IOp::Ret,
            k: ValKind::W,
            dst: VReg::NONE,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: 0,
        });
    }

    fn loop_begin(&mut self) {
        self.push(IInsn {
            op: IOp::LoopBegin,
            k: ValKind::W,
            dst: VReg::NONE,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: 0,
        });
    }

    fn loop_end(&mut self) {
        self.push(IInsn {
            op: IOp::LoopEnd,
            k: ValKind::W,
            dst: VReg::NONE,
            a: VReg::NONE,
            b: VReg::NONE,
            imm: 0,
        });
    }

    fn emitted(&self) -> u64 {
        self.insns.len() as u64
    }
}

impl IcodeBuf {
    fn push_args(&mut self, args: &[(ValKind, VReg)]) {
        let (mut ni, mut nf) = (0u8, 0u8);
        for &(k, v) in args {
            let pos = if k == ValKind::F {
                nf += 1;
                nf - 1
            } else {
                ni += 1;
                ni - 1
            };
            self.push(IInsn {
                op: IOp::Arg(pos),
                k,
                dst: VReg::NONE,
                a: v,
                b: VReg::NONE,
                imm: 0,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_records_instructions() {
        let mut b = IcodeBuf::new();
        let x = b.param(0, ValKind::W);
        let t = b.temp(ValKind::W);
        b.li(t, 5);
        b.bin(BinOp::Add, ValKind::W, t, t, x);
        b.ret_val(ValKind::W, t);
        assert_eq!(b.insns.len(), 4);
        assert_eq!(b.num_vregs(), 2);
        assert_eq!(b.kind_of(t), ValKind::W);
        assert_eq!(b.max_param(), 1);
    }

    #[test]
    fn def_use_extraction() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let y = b.temp(ValKind::W);
        b.bin(BinOp::Sub, ValKind::W, y, y, x);
        let i = b.insns[0];
        assert_eq!(i.def(), Some(y));
        assert_eq!(i.uses(), [Some(y), Some(x)]);
        b.store(StoreKind::I32, x, y, 4);
        let s = b.insns[1];
        assert_eq!(s.def(), None);
        assert_eq!(s.uses(), [Some(y), Some(x)]);
    }

    #[test]
    fn labels_and_branches() {
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 0);
        b.bind(l);
        b.br_true(x, l);
        assert!(b.insns[2].is_terminator());
        assert_eq!(b.insns[1].op, IOp::Label);
        assert_eq!(b.insns[1].imm, 0);
    }

    #[test]
    fn args_numbered_per_class() {
        let mut b = IcodeBuf::new();
        let i1 = b.temp(ValKind::W);
        let f1 = b.temp(ValKind::F);
        let i2 = b.temp(ValKind::W);
        b.call_addr(
            0x8000_0000,
            &[(ValKind::W, i1), (ValKind::F, f1), (ValKind::W, i2)],
            None,
        );
        let args: Vec<_> = b
            .insns
            .iter()
            .filter_map(|i| match i.op {
                IOp::Arg(p) => Some((p, i.k)),
                _ => None,
            })
            .collect();
        assert_eq!(
            args,
            vec![(0, ValKind::W), (0, ValKind::F), (1, ValKind::W)]
        );
    }
}
