//! # tcc-icode — the optimizing dynamic back end
//!
//! A reimplementation of ICODE (paper §5.2): the dynamic back end tcc
//! uses "in cases where dynamically generated code is used frequently or
//! runs for a long time", trading extra dynamic compilation time for
//! better code quality.
//!
//! ICODE extends the VCODE interface with an infinite number of virtual
//! registers and usage-frequency hints. Instead of emitting binary
//! immediately, a code-generating function records [`ir::IInsn`]s into an
//! [`ir::IcodeBuf`] (it implements [`tcc_vcode::CodeSink`], so the same
//! CGF drives either back end). Invoking the compiler then:
//!
//! 1. cleans the IR ([`peephole`]: dead code from composition, jump
//!    threading),
//! 2. builds a flow graph in one pass ([`flow`]),
//! 3. solves live variables by relaxation ([`liveness`]),
//! 4. coarsens them to *live intervals* ([`intervals`]),
//! 5. allocates registers with the paper's **linear scan** (Figure 3,
//!    [`linear_scan`]) or the Chaitin-style graph-coloring baseline
//!    ([`color`]),
//! 6. emits binary through the VCODE macros with spill bracketing and
//!    strength reduction ([`emit`]), consulting a (possibly pruned)
//!    translator table ([`prune`]).
//!
//! Each phase is individually timed ([`compile::Phases`]) to regenerate
//! the paper's Figure 7 cost breakdown.
//!
//! ## Example
//!
//! ```rust
//! use tcc_icode::{IcodeBuf, IcodeCompiler, Strategy};
//! use tcc_rt::ValKind;
//! use tcc_vcode::{ops::BinOp, CodeSink};
//! use tcc_vm::{CodeSpace, Vm};
//!
//! # fn main() -> Result<(), tcc_vm::VmError> {
//! let mut buf = IcodeBuf::new();
//! let x = buf.param(0, ValKind::W);
//! let t = buf.temp(ValKind::W);
//! buf.li(t, 3);
//! buf.bin(BinOp::Mul, ValKind::W, t, t, x);
//! buf.ret_val(ValKind::W, t);
//!
//! let mut code = CodeSpace::new();
//! let result = IcodeCompiler::new(Strategy::LinearScan).compile(&mut code, "triple", buf);
//! let mut vm = Vm::new(code, 1 << 20);
//! assert_eq!(vm.call(result.func.addr, &[14])?, 42);
//! # Ok(())
//! # }
//! ```

pub mod alloc;
pub mod color;
pub mod compile;
pub mod emit;
pub mod flow;
pub mod intervals;
pub mod ir;
pub mod linear_scan;
pub mod liveness;
pub mod peephole;
pub mod prune;

pub use alloc::{AllocLoc, Assignment, Pools};
pub use compile::{IcodeCompiler, IcodeResult, Phases, Strategy};
pub use intervals::Interval;
pub use ir::{IInsn, IOp, IcodeBuf, LblId, VReg};
pub use prune::TranslatorTable;
