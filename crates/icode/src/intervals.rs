//! Live intervals (paper §5.2, "Finding live intervals").
//!
//! "An interval `[i, j]` … is simply all the instructions between the
//! i-th and j-th instructions in the instruction stream, inclusive. Then
//! a live interval of a variable is the interval `[m, n]` where m is the
//! first instruction at which v is ever live and n is the last … This
//! interval information is only an approximation of the real live range
//! information (in which ranges may be split): there may be large
//! portions of `[m, n]` in which v is not live, but we simply ignore
//! them."
//!
//! Intervals also record two pieces of information the allocators need on
//! this machine: whether the interval crosses a call (such intervals must
//! live in callee-saved registers) and a spill weight accumulated from
//! the ICODE usage-frequency hints (`LoopBegin`/`LoopEnd`).

use crate::flow::FlowGraph;
use crate::ir::{IOp, IcodeBuf, VReg};
use crate::liveness::Liveness;
use tcc_rt::ValKind;

/// A live interval for one virtual register.
#[derive(Clone, Debug, PartialEq)]
pub struct Interval {
    /// The virtual register.
    pub vreg: VReg,
    /// Kind (selects the register class).
    pub kind: ValKind,
    /// First instruction index at which the register is live.
    pub start: usize,
    /// Last instruction index at which the register is live (inclusive).
    pub end: usize,
    /// True if a call instruction lies strictly inside the interval; the
    /// register must then survive the call.
    pub crosses_call: bool,
    /// Estimated dynamic use count (scaled by loop-nesting hints).
    pub weight: u64,
}

/// Builds the sorted-by-endpoint interval list.
pub fn build_intervals(buf: &IcodeBuf, fg: &FlowGraph, lv: &Liveness) -> Vec<Interval> {
    let nv = buf.num_vregs();
    let mut start = vec![usize::MAX; nv];
    let mut end = vec![0usize; nv];
    let mut weight = vec![0u64; nv];
    let mut touch = |v: VReg, pos: usize| {
        let i = v.0 as usize;
        if start[i] == usize::MAX {
            start[i] = pos;
        }
        start[i] = start[i].min(pos);
        end[i] = end[i].max(pos);
    };

    let mut depth: u32 = 0;
    for (pos, insn) in buf.insns.iter().enumerate() {
        match insn.op {
            IOp::LoopBegin => depth += 1,
            IOp::LoopEnd => depth = depth.saturating_sub(1),
            _ => {}
        }
        let w = 8u64.saturating_pow(depth.min(6));
        if let Some(d) = insn.def() {
            touch(d, pos);
            weight[d.0 as usize] = weight[d.0 as usize].saturating_add(w);
        }
        for u in insn.uses().into_iter().flatten() {
            touch(u, pos);
            weight[u.0 as usize] = weight[u.0 as usize].saturating_add(w);
        }
    }
    // Extend through block boundaries where the register is live (this is
    // what makes the approximation safe around loops: a register live-out
    // of a block covers that whole block span).
    for (bi, blk) in fg.blocks.iter().enumerate() {
        if blk.start == blk.end {
            continue;
        }
        for v in lv.live_in[bi].iter() {
            if start[v] != usize::MAX {
                start[v] = start[v].min(blk.start);
                end[v] = end[v].max(blk.start);
            }
        }
        for v in lv.live_out[bi].iter() {
            if start[v] != usize::MAX {
                end[v] = end[v].max(blk.end - 1);
            }
        }
    }
    // Call positions for crosses_call.
    let call_positions: Vec<usize> = buf
        .insns
        .iter()
        .enumerate()
        .filter(|(_, i)| matches!(i.op, IOp::CallAddr | IOp::CallInd | IOp::Hcall))
        .map(|(p, _)| p)
        .collect();

    let mut out = Vec::new();
    for v in 0..nv {
        if start[v] == usize::MAX {
            continue;
        }
        let crosses = call_positions.iter().any(|&p| start[v] < p && p < end[v]);
        out.push(Interval {
            vreg: VReg(v as u32),
            kind: buf.vreg_kinds[v],
            start: start[v],
            end: end[v],
            crosses_call: crosses,
            weight: weight[v],
        });
    }
    // "given live variable information, creating a list of live intervals
    // sorted by start or end point is accomplished in one pass over the
    // code" — here sorted by increasing end point for the reverse scan.
    out.sort_by_key(|iv| (iv.end, iv.start));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_vcode::ops::BinOp;
    use tcc_vcode::CodeSink;

    fn intervals_of(buf: &IcodeBuf) -> Vec<Interval> {
        let fg = FlowGraph::build(buf);
        let lv = Liveness::solve(buf, &fg);
        build_intervals(buf, &fg, &lv)
    }

    #[test]
    fn straight_line_intervals() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W); // insn 0: li x
        let y = b.temp(ValKind::W); // insn 1: li y
        b.li(x, 1);
        b.li(y, 2);
        b.bin(BinOp::Add, ValKind::W, y, y, x); // insn 2
        b.ret_val(ValKind::W, y); // insn 3
        let ivs = intervals_of(&b);
        let ix = ivs.iter().find(|i| i.vreg == x).unwrap();
        let iy = ivs.iter().find(|i| i.vreg == y).unwrap();
        assert_eq!((ix.start, ix.end), (0, 2));
        assert_eq!((iy.start, iy.end), (1, 3));
        assert!(!ix.crosses_call);
    }

    #[test]
    fn loop_extends_interval_over_back_edge() {
        let mut b = IcodeBuf::new();
        let s = b.temp(ValKind::W);
        let x = b.temp(ValKind::W);
        b.li(s, 0); // 0
        b.li(x, 5); // 1
        let top = b.label();
        b.bind(top); // 2
        b.bin(BinOp::Add, ValKind::W, s, s, x); // 3
        b.bin_imm(BinOp::Sub, ValKind::W, x, x, 1); // 4
        b.br_true(x, top); // 5
        b.ret_val(ValKind::W, s); // 6
        let ivs = intervals_of(&b);
        let is_ = ivs.iter().find(|i| i.vreg == s).unwrap();
        // s must be live across the whole loop body.
        assert_eq!(is_.start, 0); // defined at 0
        assert!(is_.end >= 6);
    }

    #[test]
    fn call_inside_interval_marks_crossing() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let r = b.temp(ValKind::W);
        b.li(x, 7); // 0
        b.call_addr(0x8000_0000, &[], Some((ValKind::W, r))); // 1
        b.bin(BinOp::Add, ValKind::W, r, r, x); // 2
        b.ret_val(ValKind::W, r); // 3
        let ivs = intervals_of(&b);
        let ix = ivs.iter().find(|i| i.vreg == x).unwrap();
        let ir = ivs.iter().find(|i| i.vreg == r).unwrap();
        assert!(ix.crosses_call, "x lives across the call");
        assert!(!ir.crosses_call, "r is defined by the call");
    }

    #[test]
    fn loop_hints_scale_weights() {
        let mut b = IcodeBuf::new();
        let cold = b.temp(ValKind::W);
        let hot = b.temp(ValKind::W);
        b.li(cold, 1);
        b.loop_begin();
        b.li(hot, 2);
        b.bin(BinOp::Add, ValKind::W, hot, hot, hot);
        b.loop_end();
        b.bin(BinOp::Add, ValKind::W, cold, cold, hot);
        b.ret_val(ValKind::W, cold);
        let ivs = intervals_of(&b);
        let wc = ivs.iter().find(|i| i.vreg == cold).unwrap().weight;
        let wh = ivs.iter().find(|i| i.vreg == hot).unwrap().weight;
        assert!(
            wh > wc,
            "loop-resident register should weigh more: {wh} vs {wc}"
        );
    }

    #[test]
    fn sorted_by_end_point() {
        let mut b = IcodeBuf::new();
        let xs: Vec<_> = (0..5).map(|_| b.temp(ValKind::W)).collect();
        for &x in &xs {
            b.li(x, 1);
        }
        let acc = b.temp(ValKind::W);
        b.li(acc, 0);
        for &x in &xs {
            b.bin(BinOp::Add, ValKind::W, acc, acc, x);
        }
        b.ret_val(ValKind::W, acc);
        let ivs = intervals_of(&b);
        for w in ivs.windows(2) {
            assert!(w[0].end <= w[1].end);
        }
    }
}
