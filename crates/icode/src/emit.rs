//! The ICODE code emitter (paper §5.2, "Emitting code").
//!
//! "The code emitter simply makes one pass through the buffer of ICODE
//! instructions. For each ICODE instruction, it invokes the VCODE macro
//! corresponding to the given instruction, prepending and appending spill
//! code as necessary, and performing some peephole optimizations and
//! strength reduction."
//!
//! Exactly that: the register-allocated virtual registers are mapped to
//! [`Loc`]s and the VCODE layer's typed macros do the binary emission —
//! including the transparent reload/store bracketing for spilled
//! locations and the immediate-value strength reduction.

use crate::alloc::{AllocLoc, Assignment};
use crate::ir::{IInsn, IOp, IcodeBuf, VReg};
use crate::prune::TranslatorTable;
use tcc_rt::ValKind;
use tcc_vcode::ops::UnOp;
use tcc_vcode::{CodeSink, FinishedFunc, Loc, Vcode};
use tcc_vm::regs::{ARG_REGS, FARG_REGS};
use tcc_vm::CodeSpace;

/// Translates a register-allocated ICODE buffer to binary.
///
/// # Panics
///
/// Panics if `table` does not support an instruction in `buf` (the
/// pruned-translator contract) or if the buffer references unassigned
/// virtual registers.
pub fn emit(
    code: &mut CodeSpace,
    name: &str,
    buf: &IcodeBuf,
    asn: &Assignment,
    table: &TranslatorTable,
) -> FinishedFunc {
    let mut vc = Vcode::new(code, name);

    // Save callee-saved registers the allocator handed out.
    for &r in &asn.used_callee_saved {
        vc.fb.use_callee_saved(r);
    }
    for &f in &asn.used_callee_saved_f {
        vc.fb.use_callee_saved_f(f);
    }
    // Materialize frame blocks (addressable locals) and spill slots.
    let block_off: Vec<i32> = buf
        .frame_blocks
        .iter()
        .map(|&size| vc.fb.alloc_block(size))
        .collect();
    let slot_off: Vec<i32> = (0..asn.num_slots).map(|_| vc.fb.alloc_slot()).collect();
    let fslot_off: Vec<i32> = (0..asn.num_fslots).map(|_| vc.fb.alloc_slot()).collect();
    let loc_of = |v: VReg| -> Loc {
        match asn.loc(v) {
            AllocLoc::R(r) => Loc::R(r),
            AllocLoc::F(f) => Loc::F(f),
            AllocLoc::Slot(i) => Loc::Spill(slot_off[i as usize]),
            AllocLoc::FSlot(i) => Loc::FSpill(fslot_off[i as usize]),
        }
    };

    let labels: Vec<_> = (0..buf.nlabels).map(|_| vc.new_label()).collect();
    let mut pending_args: Vec<(ValKind, Loc)> = Vec::new();

    for insn in &buf.insns {
        assert!(
            table.supports(insn),
            "pruned translator table lacks an entry for {insn:?}"
        );
        translate_one(
            &mut vc,
            insn,
            &loc_of,
            &labels,
            &block_off,
            &mut pending_args,
        );
    }
    vc.finish()
}

fn translate_one(
    vc: &mut Vcode<'_>,
    insn: &IInsn,
    loc_of: &dyn Fn(VReg) -> Loc,
    labels: &[tcc_vcode::Label],
    block_off: &[i32],
    pending_args: &mut Vec<(ValKind, Loc)>,
) {
    let lbl = |imm: i64| labels[imm as usize];
    match insn.op {
        IOp::Li => vc.li(loc_of(insn.dst), insn.imm),
        IOp::Lif => vc.lif(loc_of(insn.dst), f64::from_bits(insn.imm as u64)),
        IOp::Bin(op) => vc.bin(op, insn.k, loc_of(insn.dst), loc_of(insn.a), loc_of(insn.b)),
        IOp::BinImm(op) => {
            CodeSink::bin_imm(vc, op, insn.k, loc_of(insn.dst), loc_of(insn.a), insn.imm)
        }
        IOp::Un(op) => {
            let (d, a) = (loc_of(insn.dst), loc_of(insn.a));
            // Peephole: a move between identical locations is a no-op.
            if op == UnOp::Mov && d == a {
                return;
            }
            vc.un(op, insn.k, d, a);
        }
        IOp::Load(lk) => vc.load(lk, loc_of(insn.dst), loc_of(insn.a), insn.imm),
        IOp::Store(sk) => vc.store(sk, loc_of(insn.b), loc_of(insn.a), insn.imm),
        IOp::Label => vc.bind(lbl(insn.imm)),
        IOp::Jmp => vc.jmp(lbl(insn.imm)),
        IOp::BrCmp(op) => vc.br_cmp(op, insn.k, loc_of(insn.a), loc_of(insn.b), lbl(insn.imm)),
        IOp::BrTrue => vc.br_true(loc_of(insn.a), lbl(insn.imm)),
        IOp::BrFalse => vc.br_false(loc_of(insn.a), lbl(insn.imm)),
        IOp::Arg(_) => pending_args.push((insn.k, loc_of(insn.a))),
        IOp::CallAddr => {
            let args = std::mem::take(pending_args);
            let ret = insn.def().map(|d| (insn.k, loc_of(d)));
            vc.call(tcc_vcode::CallTarget::Addr(insn.imm as u64), &args, ret);
        }
        IOp::CallInd => {
            let args = std::mem::take(pending_args);
            let ret = insn.def().map(|d| (insn.k, loc_of(d)));
            vc.call(tcc_vcode::CallTarget::Ind(loc_of(insn.a)), &args, ret);
        }
        IOp::Hcall => {
            let args = std::mem::take(pending_args);
            let ret = insn.def().map(|d| (insn.k, loc_of(d)));
            vc.hcall_with(insn.imm as u32, &args, ret);
        }
        IOp::Ret => {
            if insn.a.is_some() {
                vc.ret_val(insn.k, loc_of(insn.a));
            } else {
                vc.ret();
            }
        }
        IOp::GetParam(i) => {
            let src = if insn.k == ValKind::F {
                Loc::F(FARG_REGS[i as usize])
            } else {
                Loc::R(ARG_REGS[i as usize])
            };
            let d = loc_of(insn.dst);
            if d != src {
                vc.un(UnOp::Mov, insn.k, d, src);
            }
        }
        IOp::FrameAddr => {
            let off = block_off[insn.imm as usize];
            vc.addi(
                ValKind::P,
                loc_of(insn.dst),
                Loc::R(tcc_vm::regs::FP),
                off as i64,
            );
        }
        IOp::LoopBegin | IOp::LoopEnd => {}
    }
}
