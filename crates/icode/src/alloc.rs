//! Register-allocation result types and the physical register pools.

use crate::ir::VReg;
use tcc_vm::regs::{FSAVED_REGS, FTEMP_REGS, SAVED_REGS, TEMP_REGS};
use tcc_vm::{FReg, Reg};

/// Where a virtual register ended up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocLoc {
    /// An integer register.
    R(Reg),
    /// A floating point register.
    F(FReg),
    /// A numbered integer spill slot.
    Slot(u32),
    /// A numbered floating point spill slot.
    FSlot(u32),
}

impl AllocLoc {
    /// True for stack locations.
    pub fn is_spill(self) -> bool {
        matches!(self, AllocLoc::Slot(_) | AllocLoc::FSlot(_))
    }
}

/// A complete allocation: one location per live virtual register.
#[derive(Clone, Debug, Default)]
pub struct Assignment {
    /// Indexed by virtual register number; `None` for registers that
    /// never appeared (dead code).
    pub locs: Vec<Option<AllocLoc>>,
    /// Number of integer spill slots used.
    pub num_slots: u32,
    /// Number of floating point spill slots used.
    pub num_fslots: u32,
    /// Callee-saved integer registers handed out (prologue must save).
    pub used_callee_saved: Vec<Reg>,
    /// Callee-saved fp registers handed out.
    pub used_callee_saved_f: Vec<FReg>,
    /// Number of intervals that were spilled.
    pub spilled: u32,
}

impl Assignment {
    /// Creates an empty assignment for `nv` virtual registers.
    pub fn new(nv: usize) -> Assignment {
        Assignment {
            locs: vec![None; nv],
            ..Assignment::default()
        }
    }

    /// Records `loc` for `v`.
    pub fn set(&mut self, v: VReg, loc: AllocLoc) {
        self.locs[v.0 as usize] = Some(loc);
        match loc {
            AllocLoc::R(r) if SAVED_REGS.contains(&r) && !self.used_callee_saved.contains(&r) => {
                self.used_callee_saved.push(r);
            }
            AllocLoc::F(f)
                if FSAVED_REGS.contains(&f) && !self.used_callee_saved_f.contains(&f) =>
            {
                self.used_callee_saved_f.push(f);
            }
            AllocLoc::Slot(_) | AllocLoc::FSlot(_) => self.spilled += 1,
            _ => {}
        }
    }

    /// Allocates a fresh integer spill slot.
    pub fn new_slot(&mut self) -> AllocLoc {
        self.num_slots += 1;
        AllocLoc::Slot(self.num_slots - 1)
    }

    /// Allocates a fresh floating point spill slot.
    pub fn new_fslot(&mut self) -> AllocLoc {
        self.num_fslots += 1;
        AllocLoc::FSlot(self.num_fslots - 1)
    }

    /// Location of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` was never assigned (indicates a pass bug).
    pub fn loc(&self, v: VReg) -> AllocLoc {
        self.locs[v.0 as usize].unwrap_or_else(|| panic!("vreg {v:?} unassigned"))
    }
}

/// The allocatable physical registers, split by class.
#[derive(Clone, Debug)]
pub struct Pools {
    /// Caller-saved integer registers (`t0..t9`).
    pub int_caller: Vec<Reg>,
    /// Callee-saved integer registers (`s0..s9`).
    pub int_callee: Vec<Reg>,
    /// Caller-saved fp registers.
    pub f_caller: Vec<FReg>,
    /// Callee-saved fp registers.
    pub f_callee: Vec<FReg>,
}

impl Default for Pools {
    fn default() -> Self {
        Pools::full()
    }
}

impl Pools {
    /// All allocatable registers (20 integer, 11 floating point).
    pub fn full() -> Pools {
        Pools {
            int_caller: TEMP_REGS.to_vec(),
            int_callee: SAVED_REGS.to_vec(),
            f_caller: FTEMP_REGS.to_vec(),
            f_callee: FSAVED_REGS.to_vec(),
        }
    }

    /// A reduced pool with `n` integer registers total (ablation /
    /// register-pressure experiments). Callee-saved registers are kept
    /// preferentially so code with calls still works.
    pub fn with_int_limit(n: usize) -> Pools {
        let mut p = Pools::full();
        let callee_keep = n.min(p.int_callee.len());
        let caller_keep = n - callee_keep;
        p.int_callee.truncate(callee_keep);
        p.int_caller.truncate(caller_keep);
        p
    }

    /// Total integer registers.
    pub fn int_total(&self) -> usize {
        self.int_caller.len() + self.int_callee.len()
    }

    /// Total floating point registers.
    pub fn float_total(&self) -> usize {
        self.f_caller.len() + self.f_callee.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_tracks_callee_saved_and_spills() {
        let mut a = Assignment::new(4);
        a.set(VReg(0), AllocLoc::R(TEMP_REGS[0]));
        a.set(VReg(1), AllocLoc::R(SAVED_REGS[0]));
        let s = a.new_slot();
        a.set(VReg(2), s);
        assert_eq!(a.used_callee_saved, vec![SAVED_REGS[0]]);
        assert_eq!(a.spilled, 1);
        assert_eq!(a.num_slots, 1);
        assert_eq!(a.loc(VReg(0)), AllocLoc::R(TEMP_REGS[0]));
    }

    #[test]
    #[should_panic(expected = "unassigned")]
    fn unassigned_lookup_panics() {
        let a = Assignment::new(1);
        a.loc(VReg(0));
    }

    #[test]
    fn limited_pools() {
        let p = Pools::with_int_limit(6);
        assert_eq!(p.int_total(), 6);
        assert_eq!(p.int_caller.len(), 0);
        assert_eq!(p.int_callee.len(), 6);
        let p = Pools::with_int_limit(14);
        assert_eq!(p.int_caller.len(), 4);
        assert_eq!(p.int_callee.len(), 10);
    }
}
