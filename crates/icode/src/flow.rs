//! Flow graph construction (paper §5.2, "Building a flow graph").
//!
//! "ICODE builds a flow graph in one pass after all CGFs have been
//! invoked … The flow graph is a single array … it traverses the buffer
//! of ICODE instructions and adds basic blocks to the array in the same
//! order in which they exist in the list of instructions." Same here:
//! one linear pass finds block boundaries, a second resolves label
//! targets to successor edges.

use crate::ir::{IInsn, IOp, IcodeBuf};

/// A basic block: a half-open range of instruction indices plus
/// successor block indices (at most two).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Block {
    /// First instruction index.
    pub start: usize,
    /// One past the last instruction index.
    pub end: usize,
    /// Successor block indices.
    pub succs: Vec<usize>,
}

/// The flow graph: blocks in instruction order.
#[derive(Clone, Debug, Default)]
pub struct FlowGraph {
    /// Basic blocks in program order.
    pub blocks: Vec<Block>,
    /// Maps instruction index to its block.
    pub block_of: Vec<usize>,
}

impl FlowGraph {
    /// Builds the flow graph for `buf`.
    ///
    /// # Panics
    ///
    /// Panics if a branch references an unbound label.
    pub fn build(buf: &IcodeBuf) -> FlowGraph {
        let insns = &buf.insns;
        let n = insns.len();
        // Pass 1: find leaders.
        let mut leader = vec![false; n + 1];
        leader[0] = true;
        let mut label_pos = vec![usize::MAX; buf.nlabels as usize];
        for (i, insn) in insns.iter().enumerate() {
            match insn.op {
                IOp::Label => {
                    leader[i] = true;
                    label_pos[insn.imm as usize] = i;
                }
                IOp::Jmp | IOp::BrCmp(_) | IOp::BrTrue | IOp::BrFalse | IOp::Ret => {
                    leader[i + 1] = true;
                }
                _ => {}
            }
        }
        // Pass 2: materialize blocks.
        let mut blocks = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        // The sentinel iteration (i == n) closes the final block, so this
        // cannot simply iterate over `leader`.
        #[allow(clippy::needless_range_loop)]
        for i in 0..=n {
            if i == n || (i > start && leader[i]) {
                blocks.push(Block {
                    start,
                    end: i,
                    succs: Vec::new(),
                });
                block_of[start..i].fill(blocks.len() - 1);
                start = i;
                if i == n {
                    break;
                }
            }
        }
        if n == 0 {
            blocks.push(Block {
                start: 0,
                end: 0,
                succs: Vec::new(),
            });
        }
        // Pass 3: successor edges.
        let block_of_label = |l: i64| -> usize {
            let pos = label_pos[l as usize];
            assert!(pos != usize::MAX, "branch to unbound label {l}");
            block_of[pos]
        };
        let nblocks = blocks.len();
        for (bi, block) in blocks.iter_mut().enumerate() {
            let (bstart, bend) = (block.start, block.end);
            if bstart == bend {
                if bi + 1 < nblocks {
                    block.succs.push(bi + 1);
                }
                continue;
            }
            let last: &IInsn = &insns[bend - 1];
            let mut succs = Vec::new();
            match last.op {
                IOp::Jmp => succs.push(block_of_label(last.imm)),
                IOp::BrCmp(_) | IOp::BrTrue | IOp::BrFalse => {
                    succs.push(block_of_label(last.imm));
                    if bi + 1 < nblocks {
                        succs.push(bi + 1);
                    }
                }
                IOp::Ret => {}
                _ => {
                    if bi + 1 < nblocks {
                        succs.push(bi + 1);
                    }
                }
            }
            block.succs = succs;
        }
        FlowGraph { blocks, block_of }
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// True when the graph has no blocks (empty function).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_rt::ValKind;
    use tcc_vcode::ops::BinOp;
    use tcc_vcode::CodeSink;

    #[test]
    fn straight_line_is_one_block() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.bin(BinOp::Add, ValKind::W, x, x, x);
        b.ret_val(ValKind::W, x);
        let fg = FlowGraph::build(&b);
        assert_eq!(fg.len(), 1);
        assert!(fg.blocks[0].succs.is_empty());
    }

    #[test]
    fn diamond_has_four_blocks() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let els = b.label();
        let join = b.label();
        b.li(x, 1);
        b.br_false(x, els); // B0 -> B1, B2(els)
        b.li(x, 2); // B1
        b.jmp(join);
        b.bind(els); // B2
        b.li(x, 3);
        b.bind(join); // B3
        b.ret_val(ValKind::W, x);
        let fg = FlowGraph::build(&b);
        assert_eq!(fg.len(), 4);
        assert_eq!(fg.blocks[0].succs, vec![2, 1]);
        assert_eq!(fg.blocks[1].succs, vec![3]);
        assert_eq!(fg.blocks[2].succs, vec![3]);
        assert!(fg.blocks[3].succs.is_empty());
    }

    #[test]
    fn loop_back_edge() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        b.li(x, 10);
        let top = b.label();
        b.bind(top); // starts B1
        b.bin_imm(BinOp::Sub, ValKind::W, x, x, 1);
        b.br_true(x, top); // B1 -> B1, B2
        b.ret_val(ValKind::W, x);
        let fg = FlowGraph::build(&b);
        assert_eq!(fg.len(), 3);
        assert_eq!(fg.blocks[1].succs, vec![1, 2]);
    }

    #[test]
    fn block_of_maps_instructions() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        let l = b.label();
        b.bind(l);
        b.br_true(x, l);
        b.ret_val(ValKind::W, x);
        let fg = FlowGraph::build(&b);
        assert_eq!(fg.block_of[0], 0);
        assert_eq!(fg.block_of[1], 1);
        assert_eq!(fg.block_of[2], 1);
        assert_eq!(fg.block_of[3], 2);
    }
}
