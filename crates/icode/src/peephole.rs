//! IR-level cleanup passes run before register allocation.
//!
//! The paper's ICODE run-time "performs some peephole optimizations"
//! besides register allocation (§5.2). Three cheap, linear passes live
//! here: dead-code elimination of unused side-effect-free definitions
//! (composition of cspecs regularly produces values nobody consumes),
//! jump threading with fall-through removal, and a fusion-aware
//! scheduler that sinks pure definitions next to their consumers so the
//! VM's superinstruction pairer sees more fusable adjacencies.

use crate::ir::{IInsn, IOp, IcodeBuf, VReg};
use tcc_vcode::ops::BinOp;

/// Removes side-effect-free instructions whose results are never used.
/// Iterates to a fixed point (a removed use can kill its operands'
/// definitions too). Returns the number of instructions removed.
pub fn dead_code(buf: &mut IcodeBuf) -> usize {
    let mut removed_total = 0;
    loop {
        let nv = buf.num_vregs();
        let mut used = vec![false; nv];
        for insn in &buf.insns {
            for u in insn.uses().into_iter().flatten() {
                used[u.0 as usize] = true;
            }
        }
        let before = buf.insns.len();
        buf.insns.retain(|insn| {
            let removable = matches!(
                insn.op,
                IOp::Li | IOp::Lif | IOp::Bin(_) | IOp::BinImm(_) | IOp::Un(_) | IOp::Load(_)
            );
            if !removable {
                return true;
            }
            match insn.def() {
                Some(d) => used[d.0 as usize],
                None => true,
            }
        });
        let removed = before - buf.insns.len();
        removed_total += removed;
        if removed == 0 {
            return removed_total;
        }
    }
}

/// True for IR entries that emit no machine code: scanning "what runs
/// next after this label" may skip them.
fn emits_nothing(op: IOp) -> bool {
    matches!(op, IOp::Label | IOp::LoopBegin | IOp::LoopEnd)
}

/// If the first machine instruction after label position `p` is an
/// unconditional `jmp`, returns its target label.
fn jump_after_label(insns: &[IInsn], p: usize) -> Option<usize> {
    let mut j = p + 1;
    while j < insns.len() && emits_nothing(insns[j].op) {
        j += 1;
    }
    match insns.get(j) {
        Some(i) if i.op == IOp::Jmp => Some(i.imm as usize),
        _ => None,
    }
}

/// Jump threading. Two linear phases, returning the total number of
/// instructions modified (retargeted + removed):
///
/// 1. **Chain threading.** Every control transfer (`jmp`, `br_cmp`,
///    `br_true`, `br_false`) whose target label is bound immediately
///    before an unconditional `jmp` is retargeted to where the chain
///    ultimately lands — `jmp L1; ...; L1: jmp L2; ...; L2: jmp L3`
///    threads straight to `L3`, so the intermediate hops never
///    execute. Chain resolution memoizes per label and carries a
///    visited set, so a chain that loops back on itself (an empty
///    infinite loop) resolves to a member of its own cycle instead of
///    spinning the compiler.
/// 2. **Fall-through removal.** `jmp L` where `L` is bound immediately
///    after (modulo labels and the no-op loop markers) is deleted.
pub fn thread_jumps(buf: &mut IcodeBuf) -> usize {
    let nlabels = buf.nlabels as usize;
    // First binding position of each label (unbound labels keep MAX
    // and resolve to themselves).
    let mut pos = vec![usize::MAX; nlabels];
    for (i, insn) in buf.insns.iter().enumerate() {
        if insn.op == IOp::Label {
            let l = insn.imm as usize;
            if pos[l] == usize::MAX {
                pos[l] = i;
            }
        }
    }
    // resolved[l] = the label the empty-jump chain starting at l
    // finally reaches.
    let mut resolved: Vec<Option<u32>> = vec![None; nlabels];
    let mut path: Vec<usize> = Vec::new();
    for l0 in 0..nlabels {
        if resolved[l0].is_some() {
            continue;
        }
        path.clear();
        let mut cur = l0;
        let fin = loop {
            if let Some(f) = resolved[cur] {
                break f;
            }
            if path.contains(&cur) {
                // The chain re-entered itself: every hop is an empty
                // jump, so any cycle member is an equivalent target.
                break cur as u32;
            }
            path.push(cur);
            match pos[cur] {
                usize::MAX => break cur as u32,
                p => match jump_after_label(&buf.insns, p) {
                    Some(next) => cur = next,
                    None => break cur as u32,
                },
            }
        };
        for &p in &path {
            resolved[p] = Some(fin);
        }
    }
    let mut changed = 0;
    for insn in &mut buf.insns {
        if !matches!(
            insn.op,
            IOp::Jmp | IOp::BrCmp(_) | IOp::BrTrue | IOp::BrFalse
        ) {
            continue;
        }
        let l = insn.imm as usize;
        let f = i64::from(resolved[l].unwrap_or(l as u32));
        if f != insn.imm {
            insn.imm = f;
            changed += 1;
        }
    }
    // Fall-through removal over the retargeted buffer.
    let insns = &buf.insns;
    let mut drop = vec![false; insns.len()];
    for (i, insn) in insns.iter().enumerate() {
        if insn.op != IOp::Jmp {
            continue;
        }
        let target = insn.imm;
        let mut j = i + 1;
        while j < insns.len() && emits_nothing(insns[j].op) {
            if insns[j].op == IOp::Label && insns[j].imm == target {
                drop[i] = true;
                break;
            }
            j += 1;
        }
    }
    let before = buf.insns.len();
    let mut idx = 0;
    buf.insns.retain(|_| {
        let keep = !drop[idx];
        idx += 1;
        keep
    });
    changed + (before - buf.insns.len())
}

/// True for pure, non-faulting, register-only instructions the
/// fusion scheduler may reorder among themselves. Loads are excluded
/// (they can fault and must not cross other memory operations), as are
/// the faulting integer divide/remainder forms — moving a trap changes
/// which address the VM reports.
fn movable(insn: &IInsn) -> bool {
    match insn.op {
        IOp::Li | IOp::Lif | IOp::Un(_) | IOp::GetParam(_) | IOp::FrameAddr => true,
        IOp::Bin(op) | IOp::BinImm(op) => {
            !matches!(op, BinOp::Div | BinOp::DivU | BinOp::Rem | BinOp::RemU)
        }
        _ => false,
    }
}

/// True when instruction `e` cannot be crossed by moving `m` later in
/// program order: `e` reads or rewrites `m`'s result, or `e` writes one
/// of `m`'s operands.
fn conflicts(m: &IInsn, e: &IInsn) -> bool {
    if let Some(d) = m.def() {
        if e.def() == Some(d) {
            return true;
        }
        if e.uses().into_iter().flatten().any(|u| u == d) {
            return true;
        }
    }
    if let Some(ed) = e.def() {
        if m.uses().into_iter().flatten().any(|u| u == ed) {
            return true;
        }
    }
    false
}

/// Sinks the pure definitions of the vregs used by `buf.insns[t]` so
/// they sit immediately before position `t`, when every crossed
/// instruction is movable and independent. Returns moves performed.
fn sink_defs_before(buf: &mut IcodeBuf, t: usize) -> usize {
    let mut moves = 0;
    let used: Vec<VReg> = buf.insns[t].uses().into_iter().flatten().collect();
    for c in used {
        // Walk back through the contiguous movable window looking for
        // the definition of `c`.
        let mut d = None;
        let mut j = t;
        while j > 0 {
            j -= 1;
            if !movable(&buf.insns[j]) {
                break;
            }
            if buf.insns[j].def() == Some(c) {
                d = Some(j);
                break;
            }
        }
        let Some(d) = d else { continue };
        if d + 1 == t {
            continue; // already adjacent
        }
        let m = buf.insns[d];
        if buf.insns[d + 1..t].iter().any(|e| conflicts(&m, e)) {
            continue;
        }
        buf.insns[d..t].rotate_left(1);
        moves += 1;
    }
    moves
}

/// Fusion-aware scheduling (ROADMAP item: fusion-aware peephole).
///
/// The VM's superinstruction pairer fuses *adjacent* scalar
/// instructions where the first feeds the second (compare→branch,
/// load→op, …). ICODE emission order frequently separates a condition's
/// definition from its branch, or a load from its consumer, with
/// unrelated pure code — the pairer then sees nothing to fuse. Two
/// linear rewrites recover those adjacencies without changing observable
/// behavior (modeled cycles, instruction counts, trap addresses):
///
/// 1. **Compare-then-branch.** For each `br_true`/`br_false`/`br_cmp`,
///    the pure definition of each condition operand is sunk to sit
///    immediately before the branch.
/// 2. **Load-then-op.** Each `load` is sunk to sit immediately before
///    its first consumer.
///
/// A move only happens when every crossed instruction is pure,
/// non-faulting, and data-independent (`movable` + `conflicts`), so
/// the permutation is semantics-preserving even for programs that trap
/// or run out of fuel mid-block: faulting and memory-touching
/// instructions are never reordered relative to each other.
///
/// Returns the number of instructions moved.
pub fn schedule_for_fusion(buf: &mut IcodeBuf) -> usize {
    let mut moves = 0;
    // 1. Sink condition definitions onto their branches.
    for t in 0..buf.insns.len() {
        if matches!(buf.insns[t].op, IOp::BrTrue | IOp::BrFalse | IOp::BrCmp(_)) {
            moves += sink_defs_before(buf, t);
        }
    }
    // 2. Sink loads onto their first consumer.
    let mut d = 0;
    while d < buf.insns.len() {
        if matches!(buf.insns[d].op, IOp::Load(_)) {
            let m = buf.insns[d];
            let mut u = d + 1;
            let first_use = loop {
                let Some(e) = buf.insns.get(u) else {
                    break None;
                };
                if e.uses().into_iter().flatten().any(|x| Some(x) == m.def()) {
                    break Some(u);
                }
                if !movable(e) || conflicts(&m, e) {
                    break None;
                }
                u += 1;
            };
            if let Some(u) = first_use {
                if u > d + 1 {
                    buf.insns[d..u].rotate_left(1);
                    moves += 1;
                }
            }
        }
        d += 1;
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_rt::ValKind;
    use tcc_vcode::CodeSink;

    #[test]
    fn dce_removes_unused_chains() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let dead1 = b.temp(ValKind::W);
        let dead2 = b.temp(ValKind::W);
        b.li(x, 1);
        b.li(dead1, 2);
        b.bin(BinOp::Add, ValKind::W, dead2, dead1, dead1); // uses dead1
        b.ret_val(ValKind::W, x);
        let removed = dead_code(&mut b);
        assert_eq!(removed, 2, "dead2 then dead1");
        assert_eq!(b.insns.len(), 2);
    }

    #[test]
    fn dce_keeps_stores_and_calls() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let p = b.temp(ValKind::P);
        b.li(x, 1);
        b.li(p, 0x2000);
        b.store(tcc_vcode::ops::StoreKind::I32, x, p, 0);
        b.call_addr(0x8000_0000, &[], None);
        b.ret_void();
        assert_eq!(dead_code(&mut b), 0);
    }

    #[test]
    fn jump_to_next_label_removed() {
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.jmp(l);
        b.bind(l);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 1);
        assert!(!b.insns.iter().any(|i| i.op == IOp::Jmp));
    }

    #[test]
    fn jump_over_code_kept() {
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.jmp(l);
        b.li(x, 2);
        b.bind(l);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 0);
    }

    #[test]
    fn jump_chain_threads_to_final_target() {
        // jmp l1 (over code); l1: jmp l2 (over code); l2: ret — the
        // first jump must retarget straight to l2.
        let mut b = IcodeBuf::new();
        let l1 = b.label();
        let l2 = b.label();
        let x = b.temp(ValKind::W);
        b.jmp(l1);
        b.li(x, 1);
        b.bind(l1);
        b.jmp(l2);
        b.li(x, 2);
        b.bind(l2);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 1, "one retarget");
        let first_jmp = b.insns.iter().find(|i| i.op == IOp::Jmp).expect("jmp");
        assert_eq!(first_jmp.imm, l2.0 as i64, "threaded past l1");
    }

    #[test]
    fn threaded_jump_collapsing_to_fall_through_is_removed() {
        // jmp l1 skips code; l1: jmp l2; l2: ret. After threading, the
        // hop at l1 targets the immediately following l2 and dies.
        let mut b = IcodeBuf::new();
        let l1 = b.label();
        let l2 = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.jmp(l1);
        b.li(x, 2);
        b.bind(l1);
        b.jmp(l2);
        b.bind(l2);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 2, "one retarget + one removal");
        let jmps: Vec<_> = b.insns.iter().filter(|i| i.op == IOp::Jmp).collect();
        assert_eq!(jmps.len(), 1);
        assert_eq!(jmps[0].imm, l2.0 as i64);
    }

    #[test]
    fn conditional_branches_thread_through_chains() {
        let mut b = IcodeBuf::new();
        let l1 = b.label();
        let l2 = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.br_true(x, l1);
        b.ret_val(ValKind::W, x);
        b.bind(l1);
        b.jmp(l2);
        b.li(x, 3);
        b.bind(l2);
        b.ret_val(ValKind::W, x);
        assert!(thread_jumps(&mut b) >= 1);
        let br = b.insns.iter().find(|i| i.op == IOp::BrTrue).expect("br");
        assert_eq!(br.imm, l2.0 as i64, "branch threaded past the hop");
    }

    #[test]
    fn cyclic_jump_chain_terminates() {
        // l1: jmp l2; l2: jmp l1 — an empty infinite loop. The pass
        // must terminate and keep the loop a loop (targets stay inside
        // the cycle).
        let mut b = IcodeBuf::new();
        let l1 = b.label();
        let l2 = b.label();
        b.bind(l1);
        b.jmp(l2);
        b.bind(l2);
        b.jmp(l1);
        b.ret_void();
        thread_jumps(&mut b);
        let cycle = [l1.0 as i64, l2.0 as i64];
        let jmps: Vec<_> = b.insns.iter().filter(|i| i.op == IOp::Jmp).collect();
        assert!(!jmps.is_empty(), "the loop must survive");
        for j in &jmps {
            assert!(cycle.contains(&j.imm), "target left the cycle: {j:?}");
        }
    }

    #[test]
    fn schedule_sinks_compare_onto_branch() {
        // cmp; unrelated; unrelated; br_true  →  the compare must end
        // up immediately before the branch.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        let y = b.temp(ValKind::W);
        let c = b.temp(ValKind::W);
        b.li(x, 1);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.li(y, 2);
        b.bin(BinOp::Add, ValKind::W, y, y, x);
        b.br_true(c, l);
        b.bind(l);
        b.ret_val(ValKind::W, y);
        assert_eq!(schedule_for_fusion(&mut b), 1);
        let br = b
            .insns
            .iter()
            .position(|i| i.op == IOp::BrTrue)
            .expect("br");
        assert_eq!(b.insns[br - 1].op, IOp::Bin(BinOp::Lt), "cmp adjacent");
    }

    #[test]
    fn schedule_sinks_load_onto_first_use() {
        let mut b = IcodeBuf::new();
        let p = b.temp(ValKind::P);
        let v = b.temp(ValKind::W);
        let y = b.temp(ValKind::W);
        let z = b.temp(ValKind::W);
        b.li(p, 0x2000);
        b.load(tcc_vcode::ops::LoadKind::I32, v, p, 0);
        b.li(y, 7);
        b.bin(BinOp::Add, ValKind::W, z, v, y); // first use of v
        b.ret_val(ValKind::W, z);
        assert_eq!(schedule_for_fusion(&mut b), 1);
        let use_at = b
            .insns
            .iter()
            .position(|i| i.op == IOp::Bin(BinOp::Add))
            .expect("add");
        assert!(
            matches!(b.insns[use_at - 1].op, IOp::Load(_)),
            "load adjacent to its consumer"
        );
    }

    #[test]
    fn schedule_never_crosses_stores_calls_or_faulting_ops() {
        // The compare is separated from its branch by a store, a call,
        // and a division — none may be crossed.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        let p = b.temp(ValKind::P);
        let c = b.temp(ValKind::W);
        b.li(x, 1);
        b.li(p, 0x2000);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.store(tcc_vcode::ops::StoreKind::I32, x, p, 0);
        b.br_true(c, l);
        let before = b.insns.clone();
        assert_eq!(schedule_for_fusion(&mut b), 0, "store is a barrier");
        assert_eq!(b.insns, before);

        let mut b2 = IcodeBuf::new();
        let l2 = b2.label();
        let x2 = b2.temp(ValKind::W);
        let c2 = b2.temp(ValKind::W);
        let d2 = b2.temp(ValKind::W);
        b2.li(x2, 1);
        b2.bin(BinOp::Lt, ValKind::W, c2, x2, x2);
        b2.bin(BinOp::Div, ValKind::W, d2, x2, x2); // may trap
        b2.br_true(c2, l2);
        b2.bind(l2);
        b2.ret_val(ValKind::W, d2);
        assert_eq!(schedule_for_fusion(&mut b2), 0, "div is a barrier");
    }

    #[test]
    fn schedule_respects_data_dependences() {
        // c's definition cannot sink past an instruction that reads c.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        let c = b.temp(ValKind::W);
        let y = b.temp(ValKind::W);
        b.li(x, 1);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.bin(BinOp::Add, ValKind::W, y, c, x); // reads c
        b.br_true(c, l);
        b.bind(l);
        b.ret_val(ValKind::W, y);
        assert_eq!(schedule_for_fusion(&mut b), 0);
    }

    #[test]
    fn schedule_stops_at_block_boundaries() {
        // A label between the compare and its branch blocks the sink:
        // another block may jump in between.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let mid = b.label();
        let x = b.temp(ValKind::W);
        let c = b.temp(ValKind::W);
        b.li(x, 1);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.bind(mid);
        b.li(x, 2);
        b.br_true(c, l);
        b.bind(l);
        b.ret_val(ValKind::W, x);
        assert_eq!(schedule_for_fusion(&mut b), 0);
    }

    #[test]
    fn self_loop_jump_terminates_and_survives() {
        let mut b = IcodeBuf::new();
        let l = b.label();
        b.bind(l);
        b.jmp(l);
        b.ret_void();
        assert_eq!(thread_jumps(&mut b), 0);
        let jmp = b.insns.iter().find(|i| i.op == IOp::Jmp).expect("jmp");
        assert_eq!(jmp.imm, l.0 as i64);
    }
}
