//! IR-level cleanup passes run before register allocation.
//!
//! The paper's ICODE run-time "performs some peephole optimizations"
//! besides register allocation (§5.2). Three cheap, linear passes live
//! here: dead-code elimination of unused side-effect-free definitions
//! (composition of cspecs regularly produces values nobody consumes),
//! jump threading with fall-through removal, and a fusion-aware
//! scheduler that sinks pure definitions next to their consumers so the
//! VM's superinstruction pairer sees more fusable adjacencies.

use crate::ir::{IInsn, IOp, IcodeBuf};
use tcc_vcode::ops::BinOp;

/// Removes side-effect-free instructions whose results are never used.
/// Iterates to a fixed point (a removed use can kill its operands'
/// definitions too). Returns the number of instructions removed.
pub fn dead_code(buf: &mut IcodeBuf) -> usize {
    let mut removed_total = 0;
    loop {
        let nv = buf.num_vregs();
        let mut used = vec![false; nv];
        for insn in &buf.insns {
            for u in insn.uses().into_iter().flatten() {
                used[u.0 as usize] = true;
            }
        }
        let before = buf.insns.len();
        buf.insns.retain(|insn| {
            let removable = matches!(
                insn.op,
                IOp::Li | IOp::Lif | IOp::Bin(_) | IOp::BinImm(_) | IOp::Un(_) | IOp::Load(_)
            );
            if !removable {
                return true;
            }
            match insn.def() {
                Some(d) => used[d.0 as usize],
                None => true,
            }
        });
        let removed = before - buf.insns.len();
        removed_total += removed;
        if removed == 0 {
            return removed_total;
        }
    }
}

/// True for IR entries that emit no machine code: scanning "what runs
/// next after this label" may skip them.
fn emits_nothing(op: IOp) -> bool {
    matches!(op, IOp::Label | IOp::LoopBegin | IOp::LoopEnd)
}

/// If the first machine instruction after label position `p` is an
/// unconditional `jmp`, returns its target label.
fn jump_after_label(insns: &[IInsn], p: usize) -> Option<usize> {
    let mut j = p + 1;
    while j < insns.len() && emits_nothing(insns[j].op) {
        j += 1;
    }
    match insns.get(j) {
        Some(i) if i.op == IOp::Jmp => Some(i.imm as usize),
        _ => None,
    }
}

/// Jump threading. Two linear phases, returning the total number of
/// instructions modified (retargeted + removed):
///
/// 1. **Chain threading.** Every control transfer (`jmp`, `br_cmp`,
///    `br_true`, `br_false`) whose target label is bound immediately
///    before an unconditional `jmp` is retargeted to where the chain
///    ultimately lands — `jmp L1; ...; L1: jmp L2; ...; L2: jmp L3`
///    threads straight to `L3`, so the intermediate hops never
///    execute. Chain resolution memoizes per label and carries a
///    visited set, so a chain that loops back on itself (an empty
///    infinite loop) resolves to a member of its own cycle instead of
///    spinning the compiler.
/// 2. **Fall-through removal.** `jmp L` where `L` is bound immediately
///    after (modulo labels and the no-op loop markers) is deleted.
pub fn thread_jumps(buf: &mut IcodeBuf) -> usize {
    let nlabels = buf.nlabels as usize;
    // First binding position of each label (unbound labels keep MAX
    // and resolve to themselves).
    let mut pos = vec![usize::MAX; nlabels];
    for (i, insn) in buf.insns.iter().enumerate() {
        if insn.op == IOp::Label {
            let l = insn.imm as usize;
            if pos[l] == usize::MAX {
                pos[l] = i;
            }
        }
    }
    // resolved[l] = the label the empty-jump chain starting at l
    // finally reaches.
    let mut resolved: Vec<Option<u32>> = vec![None; nlabels];
    let mut path: Vec<usize> = Vec::new();
    for l0 in 0..nlabels {
        if resolved[l0].is_some() {
            continue;
        }
        path.clear();
        let mut cur = l0;
        let fin = loop {
            if let Some(f) = resolved[cur] {
                break f;
            }
            if path.contains(&cur) {
                // The chain re-entered itself: every hop is an empty
                // jump, so any cycle member is an equivalent target.
                break cur as u32;
            }
            path.push(cur);
            match pos[cur] {
                usize::MAX => break cur as u32,
                p => match jump_after_label(&buf.insns, p) {
                    Some(next) => cur = next,
                    None => break cur as u32,
                },
            }
        };
        for &p in &path {
            resolved[p] = Some(fin);
        }
    }
    let mut changed = 0;
    for insn in &mut buf.insns {
        if !matches!(
            insn.op,
            IOp::Jmp | IOp::BrCmp(_) | IOp::BrTrue | IOp::BrFalse
        ) {
            continue;
        }
        let l = insn.imm as usize;
        let f = i64::from(resolved[l].unwrap_or(l as u32));
        if f != insn.imm {
            insn.imm = f;
            changed += 1;
        }
    }
    // Fall-through removal over the retargeted buffer.
    let insns = &buf.insns;
    let mut drop = vec![false; insns.len()];
    for (i, insn) in insns.iter().enumerate() {
        if insn.op != IOp::Jmp {
            continue;
        }
        let target = insn.imm;
        let mut j = i + 1;
        while j < insns.len() && emits_nothing(insns[j].op) {
            if insns[j].op == IOp::Label && insns[j].imm == target {
                drop[i] = true;
                break;
            }
            j += 1;
        }
    }
    let before = buf.insns.len();
    let mut idx = 0;
    buf.insns.retain(|_| {
        let keep = !drop[idx];
        idx += 1;
        keep
    });
    changed + (before - buf.insns.len())
}

/// True for pure, non-faulting, register-only instructions the
/// fusion scheduler may place anywhere the virtual-register dependences
/// allow — including across loads, stores, and the faulting
/// divide/remainder forms. Everything else is order-pinned (see
/// [`NodeClass`]).
fn movable(insn: &IInsn) -> bool {
    match insn.op {
        IOp::Li | IOp::Lif | IOp::Un(_) | IOp::GetParam(_) | IOp::FrameAddr => true,
        IOp::Bin(op) | IOp::BinImm(op) => {
            !matches!(op, BinOp::Div | BinOp::DivU | BinOp::Rem | BinOp::RemU)
        }
        _ => false,
    }
}

/// How the dependence-DAG scheduler may treat a block node.
#[derive(Clone, Copy, PartialEq, Eq)]
enum NodeClass {
    /// Pure, non-faulting, register-only: ordered by vreg dependences
    /// alone.
    Pure,
    /// Memory-touching or faulting (loads, stores, the trapping
    /// divide/remainder forms) plus terminators: serialized among
    /// themselves by conservative chain edges, so the relative order of
    /// every observable side effect and trap is preserved — but pure
    /// code may cross them.
    Pinned,
    /// Calls, host calls, and their argument setup: a full barrier.
    /// Nothing crosses in either direction (the argument/call cluster
    /// stays intact and a host call may observe or mutate anything).
    Barrier,
}

fn class_of(insn: &IInsn) -> NodeClass {
    if movable(insn) {
        NodeClass::Pure
    } else if matches!(
        insn.op,
        IOp::Arg(_) | IOp::CallAddr | IOp::CallInd | IOp::Hcall
    ) {
        NodeClass::Barrier
    } else {
        NodeClass::Pinned
    }
}

/// Blocks larger than this are left unscheduled (the dependence build
/// is quadratic; dynamic code generators don't emit blocks this big).
const MAX_BLOCK: usize = 768;

/// List-schedules one basic block (`insns` holds no labels; the last
/// entry may be the block terminator) over its dependence DAG. Returns
/// the number of instructions whose position changed.
///
/// Edges: true/anti/output dependences on vregs; conservative chain
/// edges between every pair of pinned nodes (memory order and trap
/// order are never permuted); barrier nodes connect to everything on
/// both sides; the terminator succeeds every other node.
///
/// Selection runs *backward* (pick a node only when everything that
/// depends on it is already placed), preferring the producer of the
/// just-placed node's operands — loads first, then the textually
/// closest definition. That greedy rule is what sinks a condition's
/// definition onto its branch and a load onto its first consumer, so
/// the VM's superinstruction pairer sees fusable adjacencies. With no
/// producer available the highest-index ready node is taken, which
/// reproduces the original order exactly (stability: a block with no
/// fusion opportunity is left untouched).
fn schedule_block(insns: &mut [IInsn]) -> usize {
    let n = insns.len();
    if !(3..=MAX_BLOCK).contains(&n) {
        return 0;
    }
    let is_term = insns[n - 1].is_terminator();
    let classes: Vec<NodeClass> = insns.iter().map(class_of).collect();
    // y (later) depends on x (earlier) through a virtual register:
    // true (y reads x's def), output (same def), or anti (y rewrites
    // one of x's operands).
    let vreg_dep = |x: &IInsn, y: &IInsn| -> bool {
        if let Some(d) = x.def() {
            if y.uses().into_iter().flatten().any(|u| u == d) || y.def() == Some(d) {
                return true;
            }
        }
        if let Some(yd) = y.def() {
            if x.uses().into_iter().flatten().any(|u| u == yd) {
                return true;
            }
        }
        false
    };
    let mut succs: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
    for i in 0..n {
        for j in i + 1..n {
            let edge = vreg_dep(&insns[i], &insns[j])
                || (classes[i] != NodeClass::Pure && classes[j] != NodeClass::Pure)
                || classes[i] == NodeClass::Barrier
                || classes[j] == NodeClass::Barrier
                || (is_term && j == n - 1);
            if edge {
                succs[i].push(j);
                preds[j].push(i);
            }
        }
    }
    let mut unplaced_succs: Vec<usize> = succs.iter().map(Vec::len).collect();
    let mut placed = vec![false; n];
    let mut order_rev: Vec<usize> = Vec::with_capacity(n);
    let mut last: Option<usize> = None;
    for _ in 0..n {
        // Prefer a ready producer of the just-placed node: the
        // definition reaching `last`'s operands (the latest earlier
        // def; output/anti edges make that the only def that can
        // legally sit adjacent).
        let mut pick = None;
        if let Some(l) = last {
            let mut best: Option<usize> = None;
            for u in insns[l].uses().into_iter().flatten() {
                let d = (0..l)
                    .rev()
                    .find(|&d| !placed[d] && insns[d].def() == Some(u));
                let Some(d) = d else { continue };
                if unplaced_succs[d] != 0 {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some(b) => {
                        let load = |k: usize| matches!(insns[k].op, IOp::Load(_));
                        (load(d), d) > (load(b), b)
                    }
                };
                if better {
                    best = Some(d);
                }
            }
            pick = best;
        }
        let c = pick.unwrap_or_else(|| {
            (0..n)
                .rev()
                .find(|&i| !placed[i] && unplaced_succs[i] == 0)
                .expect("DAG is acyclic")
        });
        placed[c] = true;
        order_rev.push(c);
        for &p in &preds[c] {
            unplaced_succs[p] -= 1;
        }
        last = Some(c);
    }
    let orig: Vec<IInsn> = insns.to_vec();
    for (k, &idx) in order_rev.iter().rev().enumerate() {
        insns[k] = orig[idx];
    }
    // Moves compare by value, so identical instructions swapping places
    // do not count as observable motion.
    insns.iter().zip(&orig).filter(|(a, b)| a != b).count()
}

/// Fusion-aware scheduling (ROADMAP item: dependence-DAG list
/// scheduler).
///
/// The VM's superinstruction pairer fuses *adjacent* instructions where
/// the first feeds the second (compare→branch, load→op, …), and the
/// threaded engine compiles run+branch groups under the same feed gate.
/// ICODE emission order frequently separates a condition's definition
/// from its branch, or a load from its consumer, with unrelated code —
/// the pairer then sees nothing to fuse. This pass rebuilds each basic
/// block's order from its dependence DAG (`schedule_block`): pure
/// definitions sink next to their consumers (even across independent
/// loads, stores, and faulting divides, which the old single-def
/// sinking window could never cross), while every pair of
/// memory-touching or faulting instructions keeps its relative order
/// and call/host-call clusters are never entered.
///
/// Observable contract: on completed runs the results, modeled
/// `cycles`, and `insns` are exactly those of the unscheduled program
/// (the block retires the same multiset of instructions); traps and
/// side effects happen in the same order with the same values. Blocks
/// are delimited by labels, loop markers, and terminators, so no
/// instruction ever crosses a control-flow join.
///
/// Returns the number of instructions whose position changed.
pub fn schedule_for_fusion(buf: &mut IcodeBuf) -> usize {
    let mut moves = 0;
    let n = buf.insns.len();
    let mut i = 0;
    while i < n {
        if matches!(buf.insns[i].op, IOp::Label | IOp::LoopBegin | IOp::LoopEnd) {
            i += 1;
            continue;
        }
        let start = i;
        while i < n && !matches!(buf.insns[i].op, IOp::Label | IOp::LoopBegin | IOp::LoopEnd) {
            let terminates = buf.insns[i].is_terminator();
            i += 1;
            if terminates {
                break;
            }
        }
        moves += schedule_block(&mut buf.insns[start..i]);
    }
    moves
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_rt::ValKind;
    use tcc_vcode::CodeSink;

    #[test]
    fn dce_removes_unused_chains() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let dead1 = b.temp(ValKind::W);
        let dead2 = b.temp(ValKind::W);
        b.li(x, 1);
        b.li(dead1, 2);
        b.bin(BinOp::Add, ValKind::W, dead2, dead1, dead1); // uses dead1
        b.ret_val(ValKind::W, x);
        let removed = dead_code(&mut b);
        assert_eq!(removed, 2, "dead2 then dead1");
        assert_eq!(b.insns.len(), 2);
    }

    #[test]
    fn dce_keeps_stores_and_calls() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let p = b.temp(ValKind::P);
        b.li(x, 1);
        b.li(p, 0x2000);
        b.store(tcc_vcode::ops::StoreKind::I32, x, p, 0);
        b.call_addr(0x8000_0000, &[], None);
        b.ret_void();
        assert_eq!(dead_code(&mut b), 0);
    }

    #[test]
    fn jump_to_next_label_removed() {
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.jmp(l);
        b.bind(l);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 1);
        assert!(!b.insns.iter().any(|i| i.op == IOp::Jmp));
    }

    #[test]
    fn jump_over_code_kept() {
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.jmp(l);
        b.li(x, 2);
        b.bind(l);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 0);
    }

    #[test]
    fn jump_chain_threads_to_final_target() {
        // jmp l1 (over code); l1: jmp l2 (over code); l2: ret — the
        // first jump must retarget straight to l2.
        let mut b = IcodeBuf::new();
        let l1 = b.label();
        let l2 = b.label();
        let x = b.temp(ValKind::W);
        b.jmp(l1);
        b.li(x, 1);
        b.bind(l1);
        b.jmp(l2);
        b.li(x, 2);
        b.bind(l2);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 1, "one retarget");
        let first_jmp = b.insns.iter().find(|i| i.op == IOp::Jmp).expect("jmp");
        assert_eq!(first_jmp.imm, l2.0 as i64, "threaded past l1");
    }

    #[test]
    fn threaded_jump_collapsing_to_fall_through_is_removed() {
        // jmp l1 skips code; l1: jmp l2; l2: ret. After threading, the
        // hop at l1 targets the immediately following l2 and dies.
        let mut b = IcodeBuf::new();
        let l1 = b.label();
        let l2 = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.jmp(l1);
        b.li(x, 2);
        b.bind(l1);
        b.jmp(l2);
        b.bind(l2);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 2, "one retarget + one removal");
        let jmps: Vec<_> = b.insns.iter().filter(|i| i.op == IOp::Jmp).collect();
        assert_eq!(jmps.len(), 1);
        assert_eq!(jmps[0].imm, l2.0 as i64);
    }

    #[test]
    fn conditional_branches_thread_through_chains() {
        let mut b = IcodeBuf::new();
        let l1 = b.label();
        let l2 = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.br_true(x, l1);
        b.ret_val(ValKind::W, x);
        b.bind(l1);
        b.jmp(l2);
        b.li(x, 3);
        b.bind(l2);
        b.ret_val(ValKind::W, x);
        assert!(thread_jumps(&mut b) >= 1);
        let br = b.insns.iter().find(|i| i.op == IOp::BrTrue).expect("br");
        assert_eq!(br.imm, l2.0 as i64, "branch threaded past the hop");
    }

    #[test]
    fn cyclic_jump_chain_terminates() {
        // l1: jmp l2; l2: jmp l1 — an empty infinite loop. The pass
        // must terminate and keep the loop a loop (targets stay inside
        // the cycle).
        let mut b = IcodeBuf::new();
        let l1 = b.label();
        let l2 = b.label();
        b.bind(l1);
        b.jmp(l2);
        b.bind(l2);
        b.jmp(l1);
        b.ret_void();
        thread_jumps(&mut b);
        let cycle = [l1.0 as i64, l2.0 as i64];
        let jmps: Vec<_> = b.insns.iter().filter(|i| i.op == IOp::Jmp).collect();
        assert!(!jmps.is_empty(), "the loop must survive");
        for j in &jmps {
            assert!(cycle.contains(&j.imm), "target left the cycle: {j:?}");
        }
    }

    #[test]
    fn schedule_sinks_compare_onto_branch() {
        // cmp; unrelated; unrelated; br_true  →  the compare must end
        // up immediately before the branch.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        let y = b.temp(ValKind::W);
        let c = b.temp(ValKind::W);
        b.li(x, 1);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.li(y, 2);
        b.bin(BinOp::Add, ValKind::W, y, y, x);
        b.br_true(c, l);
        b.bind(l);
        b.ret_val(ValKind::W, y);
        assert!(schedule_for_fusion(&mut b) >= 1);
        let br = b
            .insns
            .iter()
            .position(|i| i.op == IOp::BrTrue)
            .expect("br");
        assert_eq!(b.insns[br - 1].op, IOp::Bin(BinOp::Lt), "cmp adjacent");
    }

    #[test]
    fn schedule_sinks_load_onto_first_use() {
        let mut b = IcodeBuf::new();
        let p = b.temp(ValKind::P);
        let v = b.temp(ValKind::W);
        let y = b.temp(ValKind::W);
        let z = b.temp(ValKind::W);
        b.li(p, 0x2000);
        b.load(tcc_vcode::ops::LoadKind::I32, v, p, 0);
        b.li(y, 7);
        b.bin(BinOp::Add, ValKind::W, z, v, y); // first use of v
        b.ret_val(ValKind::W, z);
        assert!(schedule_for_fusion(&mut b) >= 1);
        let use_at = b
            .insns
            .iter()
            .position(|i| i.op == IOp::Bin(BinOp::Add))
            .expect("add");
        assert!(
            matches!(b.insns[use_at - 1].op, IOp::Load(_)),
            "load adjacent to its consumer"
        );
    }

    #[test]
    fn schedule_crosses_independent_pinned_ops_but_keeps_their_order() {
        // The compare is separated from its branch by an independent
        // store. The DAG scheduler may move the pure compare across the
        // store (the old single-def sinking window could not), but the
        // store keeps its position relative to every other pinned
        // instruction and to its operand definitions.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        let p = b.temp(ValKind::P);
        let c = b.temp(ValKind::W);
        b.li(x, 1);
        b.li(p, 0x2000);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.store(tcc_vcode::ops::StoreKind::I32, x, p, 0);
        b.br_true(c, l);
        assert!(schedule_for_fusion(&mut b) >= 1);
        let br = b
            .insns
            .iter()
            .position(|i| i.op == IOp::BrTrue)
            .expect("br");
        assert_eq!(b.insns[br - 1].op, IOp::Bin(BinOp::Lt), "cmp adjacent");
        let st = b
            .insns
            .iter()
            .position(|i| matches!(i.op, IOp::Store(_)))
            .expect("store");
        assert!(st < br, "store stays before the branch");
        let defs_before = b.insns[..st].iter().filter(|i| i.op == IOp::Li).count();
        assert_eq!(defs_before, 2, "store's operand defs stay above it");

        let mut b2 = IcodeBuf::new();
        let l2 = b2.label();
        let x2 = b2.temp(ValKind::W);
        let c2 = b2.temp(ValKind::W);
        let d2 = b2.temp(ValKind::W);
        b2.li(x2, 1);
        b2.bin(BinOp::Lt, ValKind::W, c2, x2, x2);
        b2.bin(BinOp::Div, ValKind::W, d2, x2, x2); // may trap
        b2.br_true(c2, l2);
        b2.bind(l2);
        b2.ret_val(ValKind::W, d2);
        assert!(schedule_for_fusion(&mut b2) >= 1);
        let br2 = b2
            .insns
            .iter()
            .position(|i| i.op == IOp::BrTrue)
            .expect("br");
        assert_eq!(
            b2.insns[br2 - 1].op,
            IOp::Bin(BinOp::Lt),
            "cmp crossed the faulting div onto its branch"
        );
        let dv = b2
            .insns
            .iter()
            .position(|i| i.op == IOp::Bin(BinOp::Div))
            .expect("div");
        assert!(dv < br2, "div stays before the branch");
    }

    #[test]
    fn schedule_preserves_relative_order_of_pinned_ops() {
        // load / store / div form a pinned chain: an unrelated compare
        // may sink past all of them, but their mutual order is fixed.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let p = b.temp(ValKind::P);
        let v = b.temp(ValKind::W);
        let x = b.temp(ValKind::W);
        let c = b.temp(ValKind::W);
        let d = b.temp(ValKind::W);
        b.li(p, 0x2000);
        b.li(x, 3);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.load(tcc_vcode::ops::LoadKind::I32, v, p, 0);
        b.store(tcc_vcode::ops::StoreKind::I32, x, p, 8);
        b.bin(BinOp::Div, ValKind::W, d, v, x);
        b.br_true(c, l);
        b.bind(l);
        b.ret_val(ValKind::W, d);
        schedule_for_fusion(&mut b);
        let pos = |pred: &dyn Fn(&IInsn) -> bool| b.insns.iter().position(pred).expect("pinned op");
        let ld = pos(&|i| matches!(i.op, IOp::Load(_)));
        let st = pos(&|i| matches!(i.op, IOp::Store(_)));
        let dv = pos(&|i| i.op == IOp::Bin(BinOp::Div));
        assert!(ld < st && st < dv, "pinned chain order preserved");
    }

    #[test]
    fn schedule_never_enters_call_clusters() {
        // A call between the compare and its branch is a full barrier:
        // nothing moves across it in either direction.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        let c = b.temp(ValKind::W);
        b.li(x, 1);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.call_addr(0x8000_0000, &[], None);
        b.br_true(c, l);
        b.bind(l);
        b.ret_val(ValKind::W, x);
        let before = b.insns.clone();
        assert_eq!(schedule_for_fusion(&mut b), 0, "call is a full barrier");
        assert_eq!(b.insns, before);
    }

    #[test]
    fn schedule_respects_data_dependences() {
        // c's definition cannot sink past an instruction that reads c.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        let c = b.temp(ValKind::W);
        let y = b.temp(ValKind::W);
        b.li(x, 1);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.bin(BinOp::Add, ValKind::W, y, c, x); // reads c
        b.br_true(c, l);
        b.bind(l);
        b.ret_val(ValKind::W, y);
        assert_eq!(schedule_for_fusion(&mut b), 0);
    }

    #[test]
    fn schedule_stops_at_block_boundaries() {
        // A label between the compare and its branch blocks the sink:
        // another block may jump in between.
        let mut b = IcodeBuf::new();
        let l = b.label();
        let mid = b.label();
        let x = b.temp(ValKind::W);
        let c = b.temp(ValKind::W);
        b.li(x, 1);
        b.bin(BinOp::Lt, ValKind::W, c, x, x);
        b.bind(mid);
        b.li(x, 2);
        b.br_true(c, l);
        b.bind(l);
        b.ret_val(ValKind::W, x);
        assert_eq!(schedule_for_fusion(&mut b), 0);
    }

    #[test]
    fn self_loop_jump_terminates_and_survives() {
        let mut b = IcodeBuf::new();
        let l = b.label();
        b.bind(l);
        b.jmp(l);
        b.ret_void();
        assert_eq!(thread_jumps(&mut b), 0);
        let jmp = b.insns.iter().find(|i| i.op == IOp::Jmp).expect("jmp");
        assert_eq!(jmp.imm, l.0 as i64);
    }
}
