//! IR-level cleanup passes run before register allocation.
//!
//! The paper's ICODE run-time "performs some peephole optimizations"
//! besides register allocation (§5.2). Two cheap, linear passes live
//! here: dead-code elimination of unused side-effect-free definitions
//! (composition of cspecs regularly produces values nobody consumes) and
//! removal of jumps to the immediately following label.

use crate::ir::{IOp, IcodeBuf};

/// Removes side-effect-free instructions whose results are never used.
/// Iterates to a fixed point (a removed use can kill its operands'
/// definitions too). Returns the number of instructions removed.
pub fn dead_code(buf: &mut IcodeBuf) -> usize {
    let mut removed_total = 0;
    loop {
        let nv = buf.num_vregs();
        let mut used = vec![false; nv];
        for insn in &buf.insns {
            for u in insn.uses().into_iter().flatten() {
                used[u.0 as usize] = true;
            }
        }
        let before = buf.insns.len();
        buf.insns.retain(|insn| {
            let removable = matches!(
                insn.op,
                IOp::Li | IOp::Lif | IOp::Bin(_) | IOp::BinImm(_) | IOp::Un(_) | IOp::Load(_)
            );
            if !removable {
                return true;
            }
            match insn.def() {
                Some(d) => used[d.0 as usize],
                None => true,
            }
        });
        let removed = before - buf.insns.len();
        removed_total += removed;
        if removed == 0 {
            return removed_total;
        }
    }
}

/// Deletes `jmp L` instructions where `L` is bound immediately after
/// (modulo other labels). Returns the number removed.
pub fn thread_jumps(buf: &mut IcodeBuf) -> usize {
    let insns = &buf.insns;
    let mut drop = vec![false; insns.len()];
    for (i, insn) in insns.iter().enumerate() {
        if insn.op != IOp::Jmp {
            continue;
        }
        let target = insn.imm;
        let mut j = i + 1;
        while j < insns.len() && insns[j].op == IOp::Label {
            if insns[j].imm == target {
                drop[i] = true;
                break;
            }
            j += 1;
        }
    }
    let before = buf.insns.len();
    let mut idx = 0;
    buf.insns.retain(|_| {
        let keep = !drop[idx];
        idx += 1;
        keep
    });
    before - buf.insns.len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_rt::ValKind;
    use tcc_vcode::ops::BinOp;
    use tcc_vcode::CodeSink;

    #[test]
    fn dce_removes_unused_chains() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let dead1 = b.temp(ValKind::W);
        let dead2 = b.temp(ValKind::W);
        b.li(x, 1);
        b.li(dead1, 2);
        b.bin(BinOp::Add, ValKind::W, dead2, dead1, dead1); // uses dead1
        b.ret_val(ValKind::W, x);
        let removed = dead_code(&mut b);
        assert_eq!(removed, 2, "dead2 then dead1");
        assert_eq!(b.insns.len(), 2);
    }

    #[test]
    fn dce_keeps_stores_and_calls() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let p = b.temp(ValKind::P);
        b.li(x, 1);
        b.li(p, 0x2000);
        b.store(tcc_vcode::ops::StoreKind::I32, x, p, 0);
        b.call_addr(0x8000_0000, &[], None);
        b.ret_void();
        assert_eq!(dead_code(&mut b), 0);
    }

    #[test]
    fn jump_to_next_label_removed() {
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.jmp(l);
        b.bind(l);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 1);
        assert!(!b.insns.iter().any(|i| i.op == IOp::Jmp));
    }

    #[test]
    fn jump_over_code_kept() {
        let mut b = IcodeBuf::new();
        let l = b.label();
        let x = b.temp(ValKind::W);
        b.li(x, 1);
        b.jmp(l);
        b.li(x, 2);
        b.bind(l);
        b.ret_val(ValKind::W, x);
        assert_eq!(thread_jumps(&mut b), 0);
    }
}
