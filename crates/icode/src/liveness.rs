//! Live-variable analysis.
//!
//! "In addition to constructing control flow information, ICODE collects
//! a minimal amount of local data flow information (def and use sets for
//! each basic block)" and then runs "a traditional relaxation algorithm
//! for computing exact live variable information" (§5.2). This is that
//! algorithm: per-block def/use sets and an iterative backward dataflow
//! solve to a fixed point.

use crate::flow::FlowGraph;
use crate::ir::IcodeBuf;

/// A dense bitset over virtual register numbers.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct BitSet {
    words: Vec<u64>,
}

impl BitSet {
    /// An empty set able to hold `n` elements.
    pub fn new(n: usize) -> BitSet {
        BitSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts `i`; returns true if it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Removes `i`.
    pub fn remove(&mut self, i: usize) {
        self.words[i / 64] &= !(1 << (i % 64));
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// `self |= other`; returns true if `self` changed.
    pub fn union_with(&mut self, other: &BitSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let old = *a;
            *a |= b;
            changed |= *a != old;
        }
        changed
    }

    /// `self = (self - kill) | gen`; standard transfer step.
    pub fn transfer(&mut self, gen: &BitSet, kill: &BitSet) {
        for ((a, g), k) in self.words.iter_mut().zip(&gen.words).zip(&kill.words) {
            *a = (*a & !k) | g;
        }
    }

    /// Empties the set, keeping capacity.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// `self = other`, allocation-free. Both sets must have the same
    /// capacity.
    pub fn copy_from(&mut self, other: &BitSet) {
        debug_assert_eq!(self.words.len(), other.words.len());
        self.words.copy_from_slice(&other.words);
    }

    /// Iterates over members.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| wi * 64 + b)
        })
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Result of live-variable analysis: live-in/live-out per block.
#[derive(Clone, Debug)]
pub struct Liveness {
    /// Live-in set per block.
    pub live_in: Vec<BitSet>,
    /// Live-out set per block.
    pub live_out: Vec<BitSet>,
    /// Upward-exposed uses per block.
    pub use_set: Vec<BitSet>,
    /// Defined-before-used per block.
    pub def_set: Vec<BitSet>,
}

impl Liveness {
    /// Runs the analysis.
    pub fn solve(buf: &IcodeBuf, fg: &FlowGraph) -> Liveness {
        let nv = buf.num_vregs();
        let nb = fg.len();
        let mut use_set = vec![BitSet::new(nv); nb];
        let mut def_set = vec![BitSet::new(nv); nb];
        for (bi, blk) in fg.blocks.iter().enumerate() {
            for insn in &buf.insns[blk.start..blk.end] {
                for u in insn.uses().into_iter().flatten() {
                    if !def_set[bi].contains(u.0 as usize) {
                        use_set[bi].insert(u.0 as usize);
                    }
                }
                if let Some(d) = insn.def() {
                    def_set[bi].insert(d.0 as usize);
                }
            }
        }
        let mut live_in = vec![BitSet::new(nv); nb];
        let mut live_out = vec![BitSet::new(nv); nb];
        // Backward iteration; reverse program order converges fast on
        // reducible graphs. The scratch sets are reused across every
        // iteration — the inner loop allocates nothing.
        let mut out = BitSet::new(nv);
        let mut inn = BitSet::new(nv);
        let mut changed = true;
        while changed {
            changed = false;
            for bi in (0..nb).rev() {
                out.clear();
                for &s in &fg.blocks[bi].succs {
                    out.union_with(&live_in[s]);
                }
                inn.copy_from(&out);
                inn.transfer(&use_set[bi], &def_set[bi]);
                if inn != live_in[bi] {
                    live_in[bi].copy_from(&inn);
                    changed = true;
                }
                live_out[bi].copy_from(&out);
            }
        }
        Liveness {
            live_in,
            live_out,
            use_set,
            def_set,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcc_rt::ValKind;
    use tcc_vcode::ops::BinOp;
    use tcc_vcode::CodeSink;

    #[test]
    fn bitset_basics() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(129));
        assert!(!s.insert(0));
        assert!(s.contains(129));
        s.remove(0);
        assert!(!s.contains(0));
        assert_eq!(s.count(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![129]);
    }

    #[test]
    fn bitset_copy_from_and_clear() {
        let mut a = BitSet::new(130);
        a.insert(5);
        a.insert(129);
        let mut b = BitSet::new(130);
        b.insert(70);
        b.copy_from(&a);
        assert_eq!(b, a);
        assert!(!b.contains(70));
        b.clear();
        assert_eq!(b.count(), 0);
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn loop_keeps_accumulator_live() {
        // x = p; s = 0; do { s += x; x -= 1 } while (x); ret s
        let mut b = IcodeBuf::new();
        let x = b.param(0, ValKind::W);
        let s = b.temp(ValKind::W);
        b.li(s, 0);
        let top = b.label();
        b.bind(top);
        b.bin(BinOp::Add, ValKind::W, s, s, x);
        b.bin_imm(BinOp::Sub, ValKind::W, x, x, 1);
        b.br_true(x, top);
        b.ret_val(ValKind::W, s);
        let fg = FlowGraph::build(&b);
        let lv = Liveness::solve(&b, &fg);
        // Find the loop block (the one with a self edge).
        let loop_bi = (0..fg.len())
            .find(|&bi| fg.blocks[bi].succs.contains(&bi))
            .unwrap();
        assert!(
            lv.live_in[loop_bi].contains(s.0 as usize),
            "s live into loop"
        );
        assert!(
            lv.live_in[loop_bi].contains(x.0 as usize),
            "x live into loop"
        );
        assert!(
            lv.live_out[loop_bi].contains(s.0 as usize),
            "s live out of loop"
        );
    }

    #[test]
    fn dead_def_is_not_live() {
        let mut b = IcodeBuf::new();
        let x = b.temp(ValKind::W);
        let d = b.temp(ValKind::W);
        b.li(x, 1);
        b.li(d, 9); // dead
        b.ret_val(ValKind::W, x);
        let fg = FlowGraph::build(&b);
        let lv = Liveness::solve(&b, &fg);
        assert!(!lv.live_in[0].contains(d.0 as usize));
        assert!(!lv.live_out[0].contains(x.0 as usize)); // no successor
    }
}
