//! The predecoded execution engine: a per-function translation cache
//! with superinstruction fusion.
//!
//! The reference engine ([`ExecEngine::DecodePerStep`]) pays a bounds +
//! liveness check, `Insn::decode` bit-twiddling, and two cost-model
//! matches on **every executed instruction**. Following the paper's
//! premise — pay translation cost once per code body, not per execution
//! — this module translates a sealed function's word range once into a
//! dense `DecodedFn` buffer: operands unpacked, [`Op`] resolved,
//! branch targets pre-resolved to buffer indices, and per-instruction
//! cycle costs pre-looked-up. [`Vm::run`] then dispatches over that
//! buffer in a tight loop with the liveness check hoisted to
//! cache-entry time.
//!
//! # Equivalence contract
//!
//! The predecoded engine (with or without fusion) is *observationally
//! identical* to decode-per-step: same result values, same `cycles`,
//! same `insns`, same exit status, and same error at the same
//! instruction (including [`VmError::OutOfFuel`]). Fused
//! superinstructions charge the exact sum of their constituents and run
//! each constituent as a separate micro-step (execute, charge, fuel
//! check — in slow-path order), so even mid-pair faults are identical.
//! `tests/exec_differential.rs` enforces this on randomized programs.
//!
//! # Invalidation
//!
//! Decoded buffers are keyed by
//! [`CodeSpace::live_epoch`](crate::code::CodeSpace::live_epoch), which bumps
//! whenever previously-live code stops meaning what it did: a function
//! is freed (directly or by `tcc-cache` eviction) or a live word is
//! patched. On any epoch change the whole cache is dropped and stale
//! pcs fall back to the reference engine's single-step path, which
//! raises [`VmError::StaleCode`] / [`VmError::BadPc`] exactly as today.
//! Host calls can free or patch code mid-run (the compile runtime
//! does), so the epoch is re-checked after every host call before
//! execution re-enters a decoded buffer.

use std::sync::Arc;

use crate::adaptive::{AdaptiveStats, FnTier, DEFAULT_FUSE_AFTER, DEFAULT_THREAD_AFTER};
use crate::code::CODE_BASE;
use crate::cost::CostModel;
use crate::error::VmError;
use crate::host::HostCall;
use crate::interp::{branch_taken, exec_scalar, ExitStatus, Step, Vm, RETURN_SENTINEL};
use crate::isa::{Insn, Op};

/// Which execution engine [`Vm::run`] dispatches through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecEngine {
    /// Fetch + bounds/liveness check + decode + cost lookup on every
    /// instruction. The reference semantics.
    DecodePerStep,
    /// Translate each sealed function once, execute from the decoded
    /// buffer. `fuse` additionally merges adjacent instruction pairs
    /// into superinstructions.
    Predecoded {
        /// Enable superinstruction fusion over the decoded buffer.
        fuse: bool,
    },
    /// Direct-threaded dispatch (a handler function pointer per slot)
    /// with basic-block fuel batching. See [`crate::threaded`].
    Threaded,
    /// Count-triggered per-function tiering: decode-per-step until a
    /// function has been entered `fuse_after` times, predecoded+fused
    /// until `thread_after`, direct-threaded after that. Run-once code
    /// never pays translation; hot code ends up on the fastest engine.
    /// See [`crate::adaptive`].
    Adaptive {
        /// Completed runs after which a function is promoted to the
        /// predecoded+fused engine (tier 1).
        fuse_after: u32,
        /// Completed runs after which a function is promoted to the
        /// direct-threaded engine (tier 2).
        thread_after: u32,
        /// Translate promoted functions on a background worker thread
        /// instead of inline: the promoting run keeps executing at its
        /// current tier and the finished translation is swapped in at a
        /// later function entry (discarded if the live epoch moved
        /// first). `false` keeps PR 5's synchronous promotion.
        background: bool,
    },
}

impl Default for ExecEngine {
    /// Adaptive tiering with the calibrated thresholds
    /// ([`DEFAULT_FUSE_AFTER`] / [`DEFAULT_THREAD_AFTER`], from the
    /// `suite adaptive` reuse sweep).
    fn default() -> Self {
        ExecEngine::Adaptive {
            fuse_after: DEFAULT_FUSE_AFTER,
            thread_after: DEFAULT_THREAD_AFTER,
            background: false,
        }
    }
}

/// Counters for the execution engine: how much was translated and how
/// instructions were dispatched.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Functions translated into decoded buffers.
    pub translations: u64,
    /// Total code words covered by those translations.
    pub translated_words: u64,
    /// Instruction pairs fused into superinstructions (cumulative over
    /// translations).
    pub fused_pairs: u64,
    /// Instructions retired from decoded buffers.
    pub fast_insns: u64,
    /// Instructions retired by the decode-per-step path (the whole run
    /// for that engine; fallback steps for the predecoded engine).
    pub slow_insns: u64,
    /// Whole-cache invalidations triggered by a live-epoch change.
    pub invalidations: u64,
    /// Scalar runs whose whole cost was charged in one batch by the
    /// threaded engine ([`crate::threaded`]).
    pub batched_blocks: u64,
    /// Batched runs that exited early (mid-run fault) and had their
    /// unexecuted tail un-charged.
    pub fuel_reconciliations: u64,
    /// Size of the direct-threaded handler table; `0` until the
    /// threaded engine has translated something.
    pub handlers: u64,
    /// Superinstruction groups compiled by the threaded engine's
    /// translation (fused run+jump, run+branch, pair, and triple slots;
    /// cumulative over translations).
    pub superinstructions: u64,
    /// Handler dispatches executed by the threaded engine (one per
    /// dispatch-loop iteration inside translated buffers).
    pub dispatches: u64,
    /// Threaded-engine dispatches that went through a superinstruction
    /// handler (a whole fused group per dispatch).
    pub fused_dispatches: u64,
}

impl ExecStats {
    /// Fraction of retired instructions dispatched from translated
    /// buffers. `0.0` when nothing has executed yet (matching
    /// `CacheMetrics::hit_rate`: no traffic is not a perfect score).
    pub fn hit_rate(&self) -> f64 {
        let total = self.fast_insns + self.slow_insns;
        if total == 0 {
            0.0
        } else {
            self.fast_insns as f64 / total as f64
        }
    }

    /// Fraction of threaded-engine dispatches that executed a whole
    /// superinstruction group. `0.0` before anything has dispatched
    /// (the PR 6 obs convention: zero denominators never produce NaN).
    pub fn fused_dispatch_rate(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.fused_dispatches as f64 / self.dispatches as f64
        }
    }

    /// Threaded-engine dispatches per fast-path retired instruction —
    /// the superinstruction win in one number (lower is better; `1.0`
    /// would mean one indirect dispatch per instruction). `0.0` when
    /// nothing has retired from translated buffers yet.
    pub fn dispatches_per_insn(&self) -> f64 {
        if self.fast_insns == 0 {
            0.0
        } else {
            self.dispatches as f64 / self.fast_insns as f64
        }
    }
}

/// Per-VM translation cache: decoded and threaded buffers indexed by
/// code word, valid for a single `CodeSpace::live_epoch`.
///
/// Generic over the host because the threaded buffers store handler
/// function pointers typed over `Vm<H>`.
pub(crate) struct TransCache<H> {
    /// The `live_epoch` the cached translations were made under.
    pub(crate) epoch: u64,
    /// Word index → decoded translation covering that word (shared
    /// across the function's whole range).
    pub(crate) map: Vec<Option<Arc<DecodedFn>>>,
    /// Word index → direct-threaded translation covering that word.
    pub(crate) tmap: Vec<Option<Arc<crate::threaded::ThreadedFn<H>>>>,
    /// Word index → index into [`TransCache::tier_fns`] for the live
    /// function covering that word, or [`NO_TIER`] when untracked. A
    /// dense mirror of the live ranges so the adaptive engine resolves
    /// a function entry with one array load instead of a binary search
    /// plus hash probe per call/return transition.
    pub(crate) tier_idx: Vec<u32>,
    /// Adaptive tier state (run count, current tier) per entered
    /// function, appended on first entry. Dropped together with the
    /// translations it justifies.
    pub(crate) tier_fns: Vec<FnTier>,
    pub(crate) stats: ExecStats,
    /// Counters specific to the adaptive engine.
    pub(crate) astats: AdaptiveStats,
    /// The background translation worker, spawned lazily on the first
    /// asynchronous promotion and kept for the VM's lifetime.
    pub(crate) worker: Option<crate::adaptive::TransWorker<H>>,
    /// Subscription to a shared multi-tenant translation hub; when set,
    /// background builds go there instead of a per-VM worker.
    pub(crate) hub: Option<crate::adaptive::HubClient<H>>,
    /// Cache generation, bumped by [`TransCache::clear`]: worker
    /// responses stamped with an older generation are dropped without
    /// being installed (their tier state is gone).
    pub(crate) generation: u64,
    /// Requests enqueued to the worker whose responses have not been
    /// received yet (received responses count down even when the result
    /// is discarded).
    pub(crate) pending: u32,
    /// Superinstruction shape frequencies from threaded translations
    /// ("addw+beq" → count), cumulative over translations like
    /// [`ExecStats::superinstructions`]. Feeds the suite's
    /// `pair_histogram` so future handler selection is data-driven.
    pub(crate) shapes: std::collections::HashMap<String, u64>,
}

impl<H> std::fmt::Debug for TransCache<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransCache")
            .field("epoch", &self.epoch)
            .field("map", &self.map.len())
            .field("tmap", &self.tmap.len())
            .field("stats", &self.stats)
            .field("generation", &self.generation)
            .field("pending", &self.pending)
            .finish()
    }
}

impl<H> Default for TransCache<H> {
    fn default() -> Self {
        TransCache {
            epoch: 0,
            map: Vec::new(),
            tmap: Vec::new(),
            tier_idx: Vec::new(),
            tier_fns: Vec::new(),
            stats: ExecStats::default(),
            astats: AdaptiveStats::default(),
            worker: None,
            hub: None,
            generation: 0,
            pending: 0,
            shapes: std::collections::HashMap::new(),
        }
    }
}

impl<H> TransCache<H> {
    pub(crate) fn with_epoch(epoch: u64) -> TransCache<H> {
        TransCache {
            epoch,
            ..TransCache::default()
        }
    }

    /// Drops every cached translation and the adaptive tier state that
    /// justified it (counters are kept). Bumps the cache generation so
    /// in-flight background translations enqueued against the old tier
    /// state are dropped on receipt instead of installed.
    pub(crate) fn clear(&mut self) {
        self.generation += 1;
        for slot in &mut self.map {
            *slot = None;
        }
        for slot in &mut self.tmap {
            *slot = None;
        }
        for slot in &mut self.tier_idx {
            *slot = crate::adaptive::NO_TIER;
        }
        self.tier_fns.clear();
    }

    /// Whether a decoded buffer already covers word index `idx`.
    pub(crate) fn decoded_cached(&self, idx: usize) -> bool {
        matches!(self.map.get(idx), Some(Some(_)))
    }

    /// Whether a threaded buffer already covers word index `idx`.
    pub(crate) fn threaded_cached(&self, idx: usize) -> bool {
        matches!(self.tmap.get(idx), Some(Some(_)))
    }
}

/// One function's decoded form: a dense buffer with one entry per code
/// word, addressed by `(pc - base) / 4`.
#[derive(Debug)]
pub(crate) struct DecodedFn {
    /// Absolute address of buffer index 0.
    base: u64,
    insns: Vec<DInsn>,
}

/// An unpacked scalar (straight-line, non-control) instruction with its
/// cycle cost baked in; also one constituent of a fused pair.
#[derive(Clone, Copy, Debug)]
struct ScalarHalf {
    op: Op,
    rd: u8,
    rs1: u8,
    rs2: u8,
    imm: i32,
    cost: u32,
}

/// A decoded-buffer entry. Branch/jump targets are pre-resolved to
/// *buffer indices* (`i64`, may fall outside `0..len` for cross-function
/// control transfers — those exit the buffer).
///
/// Fused entries occupy the slot of their first constituent and advance
/// the buffer index by 2; the second constituent's slot keeps its own
/// unfused entry, so control transfers *into* the middle of a pair
/// (branch targets, return addresses) execute correctly.
#[derive(Clone, Copy, Debug)]
enum DInsn {
    Scalar(ScalarHalf),
    Branch {
        op: Op,
        rd: u8,
        rs1: u8,
        cost: u32,
        taken_cost: u32,
        target: i64,
    },
    Jump {
        cost: u32,
        target: i64,
    },
    Jal {
        cost: u32,
        target: i64,
    },
    Jalr {
        rd: u8,
        rs1: u8,
        cost: u32,
    },
    Halt {
        cost: u32,
    },
    Hcall {
        num: u32,
        cost: u32,
    },
    /// A word that does not decode. Raises [`VmError::BadOpcode`] only
    /// if actually executed, like the reference engine.
    Trap {
        opcode: u8,
    },
    /// Two scalars executed as consecutive micro-steps.
    Fused2 {
        a: ScalarHalf,
        b: ScalarHalf,
    },
    /// A scalar micro-step followed by a conditional branch
    /// (compare+branch, `li`+branch, load+branch...).
    FusedBr {
        a: ScalarHalf,
        op: Op,
        rd: u8,
        rs1: u8,
        cost: u32,
        taken_cost: u32,
        target: i64,
    },
}

fn icost(c: u64) -> u32 {
    u32::try_from(c).expect("per-insn cost fits u32")
}

/// Buffer index a control transfer at buffer index `i` with word
/// offset `imm` lands on: `(pc + 4) + imm * 4` in index space.
fn rel_target(i: usize, imm: i32) -> i64 {
    i as i64 + 1 + imm as i64
}

/// Translates the sealed words of the range starting at word index
/// `start` into a decoded buffer, baking in the cost model and
/// (optionally) fusing pairs.
///
/// Takes the raw words (not the `CodeSpace`) so the adaptive engine's
/// background worker can run it over a snapshot without holding any
/// borrow of the VM; `start` only positions [`DecodedFn::base`].
pub(crate) fn translate(
    words: &[u32],
    start: usize,
    cost: &CostModel,
    fuse: bool,
    stats: &mut ExecStats,
) -> DecodedFn {
    let mut raw: Vec<DInsn> = Vec::with_capacity(words.len());
    for (i, &word) in words.iter().enumerate() {
        let insn = match Insn::decode(word) {
            Ok(insn) => insn,
            Err(_) => {
                raw.push(DInsn::Trap {
                    opcode: (word >> 24) as u8,
                });
                continue;
            }
        };
        let c = icost(cost.cost(insn.op));
        raw.push(match insn.op {
            Op::Halt => DInsn::Halt { cost: c },
            Op::Hcall => DInsn::Hcall {
                num: insn.imm as u32,
                cost: c,
            },
            Op::J => DInsn::Jump {
                cost: c,
                target: rel_target(i, insn.imm),
            },
            Op::Jal => DInsn::Jal {
                cost: c,
                target: rel_target(i, insn.imm),
            },
            Op::Jalr => DInsn::Jalr {
                rd: insn.rd,
                rs1: insn.rs1,
                cost: c,
            },
            op if op.is_branch() => DInsn::Branch {
                op,
                rd: insn.rd,
                rs1: insn.rs1,
                cost: c,
                taken_cost: icost(cost.cost(op) + cost.branch_taken_extra),
                target: rel_target(i, insn.imm),
            },
            op => DInsn::Scalar(ScalarHalf {
                op,
                rd: insn.rd,
                rs1: insn.rs1,
                rs2: insn.rs2,
                imm: insn.imm,
                cost: c,
            }),
        });
    }
    let insns = if fuse { fuse_pairs(&raw, stats) } else { raw };
    DecodedFn {
        base: CODE_BASE + (start as u64) * 4,
        insns,
    }
}

/// Overlays superinstructions on the raw buffer: each slot whose entry
/// and successor are fusable gets the fused form. Slots are never
/// consumed — entry `i+1` stays valid for control transfers into it —
/// so fused pairs may overlap; execution simply skips the middle slot.
///
/// Scalar+scalar always fuses. Scalar+branch fuses only when the
/// scalar **feeds** the branch (its destination is one of the branch's
/// compared registers) — the compare-and-branch idiom `FusedBr` is
/// named for. The feed requirement is what makes the ICODE back end's
/// fusion-aware scheduler measurable: sinking a condition's definition
/// onto its branch turns a non-fusable adjacency into a fusable one.
fn fuse_pairs(raw: &[DInsn], stats: &mut ExecStats) -> Vec<DInsn> {
    let mut out = Vec::with_capacity(raw.len());
    for i in 0..raw.len() {
        let fused = match (&raw[i], raw.get(i + 1)) {
            (DInsn::Scalar(a), Some(DInsn::Scalar(b))) => Some(DInsn::Fused2 { a: *a, b: *b }),
            (
                DInsn::Scalar(a),
                Some(&DInsn::Branch {
                    op,
                    rd,
                    rs1,
                    cost,
                    taken_cost,
                    target,
                }),
            ) if a.rd == rd || a.rd == rs1 => Some(DInsn::FusedBr {
                a: *a,
                op,
                rd,
                rs1,
                cost,
                taken_cost,
                target,
            }),
            _ => None,
        };
        match fused {
            Some(f) => {
                stats.fused_pairs += 1;
                out.push(f);
            }
            None => out.push(raw[i]),
        }
    }
    out
}

/// A decoded translation detached from any particular placement, safe
/// to share across VMs and threads (the payload behind the shared
/// artifact cache's `Arc`'d artifacts).
///
/// Decoded buffers are position-relative: control-transfer targets are
/// buffer indices, and only `DecodedFn::base` is positional. A buffer
/// whose every *static* target lands inside the buffer is therefore
/// position-independent — [`SharedTranslation::build`] refuses anything
/// else (a cross-function jump would exit to a pc computed from the
/// original placement). Consumers stamp a placement on at preseed time
/// via [`Vm::preseed_translation`], which also revalidates the cost
/// model and engine mode: a shared translation never overrides either.
#[derive(Clone, Debug)]
pub struct SharedTranslation {
    inner: Arc<SharedTransInner>,
}

#[derive(Debug)]
struct SharedTransInner {
    /// Fused decoded entries, targets all internal.
    insns: Vec<DInsn>,
    /// The cost model baked into the per-entry cycle costs.
    cost: CostModel,
    /// Pairs fused while building (stat preseeding).
    fused_pairs: u64,
}

impl SharedTranslation {
    /// Translates `words` (a sealed function's encoded words, fusion on)
    /// into a shareable buffer. Returns `None` if the function is not
    /// position-independent: any decodable jump, call, or branch whose
    /// pre-resolved target falls outside the buffer.
    pub fn build(words: &[u32], cost: &CostModel) -> Option<SharedTranslation> {
        let mut stats = ExecStats::default();
        let tr = translate(words, 0, cost, true, &mut stats);
        let len = tr.insns.len() as i64;
        for d in &tr.insns {
            let target = match *d {
                DInsn::Jump { target, .. }
                | DInsn::Jal { target, .. }
                | DInsn::Branch { target, .. }
                | DInsn::FusedBr { target, .. } => target,
                _ => continue,
            };
            if !(0..len).contains(&target) {
                return None;
            }
        }
        Some(SharedTranslation {
            inner: Arc::new(SharedTransInner {
                insns: tr.insns,
                cost: cost.clone(),
                fused_pairs: stats.fused_pairs,
            }),
        })
    }

    /// The cost model the buffer's cycle charges were computed under.
    pub fn cost_model(&self) -> &CostModel {
        &self.inner.cost
    }

    /// Buffer length in code words.
    pub fn len(&self) -> usize {
        self.inner.insns.len()
    }

    /// True for a zero-length buffer.
    pub fn is_empty(&self) -> bool {
        self.inner.insns.is_empty()
    }

    /// Superinstruction pairs fused into the buffer.
    pub fn fused_pairs(&self) -> u64 {
        self.inner.fused_pairs
    }

    /// Stamps a placement onto the shared buffer.
    fn instantiate(&self, addr: u64) -> DecodedFn {
        DecodedFn {
            base: addr,
            insns: self.inner.insns.clone(),
        }
    }
}

impl<H: HostCall> Vm<H> {
    /// Installs a [`SharedTranslation`] for the live sealed function at
    /// `addr`, so the first promoted run starts from the shared decoded
    /// buffer instead of re-translating. Returns whether the translation
    /// was (or already is) installed; `false` means the VM's engine
    /// does not dispatch fused decoded buffers, the cost model differs,
    /// or `addr` is not the start of a live range of matching length —
    /// all cases where the VM silently keeps its own lazy translation
    /// path, never a correctness hazard.
    pub fn preseed_translation(&mut self, addr: u64, tr: &SharedTranslation) -> bool {
        let fuse_compatible = matches!(
            self.engine,
            ExecEngine::Adaptive { .. } | ExecEngine::Predecoded { fuse: true }
        );
        if !fuse_compatible || *tr.cost_model() != self.cost {
            return false;
        }
        let epoch = self.state.code.live_epoch();
        if epoch != self.trans.epoch {
            self.trans.clear();
            self.trans.epoch = epoch;
            self.trans.stats.invalidations += 1;
        }
        if addr < CODE_BASE || !addr.is_multiple_of(4) {
            return false;
        }
        let idx = ((addr - CODE_BASE) / 4) as usize;
        let Some((start, end)) = self.state.code.live_range_containing(idx) else {
            return false;
        };
        if start != idx || end - start != tr.len() {
            return false;
        }
        if self.trans.decoded_cached(idx) {
            return true;
        }
        let decoded = Arc::new(tr.instantiate(addr));
        let need = self.state.code.next_index();
        if self.trans.map.len() < need {
            self.trans.map.resize(need, None);
        }
        for slot in self.trans.map[start..end].iter_mut() {
            *slot = Some(Arc::clone(&decoded));
        }
        self.trans.stats.translations += 1;
        self.trans.stats.translated_words += (end - start) as u64;
        self.trans.stats.fused_pairs += tr.fused_pairs();
        true
    }

    /// The predecoded engine's run loop: execute from decoded buffers
    /// where a translation exists, fall back to single reference-engine
    /// steps where one doesn't (stale, unaligned, or out-of-range pcs),
    /// so every fault is raised by the exact same code on both paths.
    pub(crate) fn run_predecoded(
        &mut self,
        mut pc: u64,
        fuse: bool,
    ) -> Result<ExitStatus, VmError> {
        loop {
            if pc == RETURN_SENTINEL {
                return Ok(ExitStatus::Returned);
            }
            let step = match self.translation_at(pc, fuse) {
                Some(tr) => self.dispatch(&tr, pc)?,
                None => {
                    let step = self.step_slow(pc)?;
                    self.trans.stats.slow_insns += 1;
                    step
                }
            };
            match step {
                Step::At(next) => pc = next,
                Step::Done(status) => return Ok(status),
            }
        }
    }

    /// Looks up (or lazily builds) the decoded buffer covering `pc`.
    /// Validates the cache against the code space's live epoch first —
    /// this is where the per-instruction liveness check is hoisted to.
    pub(crate) fn translation_at(&mut self, pc: u64, fuse: bool) -> Option<Arc<DecodedFn>> {
        let epoch = self.state.code.live_epoch();
        if epoch != self.trans.epoch {
            self.trans.clear();
            self.trans.epoch = epoch;
            self.trans.stats.invalidations += 1;
        }
        if pc < CODE_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / 4) as usize;
        if let Some(Some(tr)) = self.trans.map.get(idx) {
            return Some(Arc::clone(tr));
        }
        let (start, end) = self.state.code.live_range_containing(idx)?;
        let tr = Arc::new(translate(
            self.state.code.word_slice(start, end),
            start,
            &self.cost,
            fuse,
            &mut self.trans.stats,
        ));
        let need = self.state.code.next_index();
        if self.trans.map.len() < need {
            self.trans.map.resize(need, None);
        }
        for slot in self.trans.map[start..end].iter_mut() {
            *slot = Some(Arc::clone(&tr));
        }
        self.trans.stats.translations += 1;
        self.trans.stats.translated_words += (end - start) as u64;
        Some(tr)
    }

    /// Executes from the decoded buffer until control leaves it, a run
    /// terminates, or an error is raised. Cycle/instruction counters
    /// live in locals and are flushed to machine state on every exit
    /// and around host calls, so observable state always matches the
    /// reference engine exactly.
    pub(crate) fn dispatch(&mut self, tr: &DecodedFn, pc: u64) -> Result<Step, VmError> {
        let base = tr.base;
        let buf = &tr.insns[..];
        let len = buf.len();
        let fuel = self.fuel;
        let mut i = ((pc - base) / 4) as usize;
        let mut cycles = self.state.cycles;
        let mut insns = self.state.insns;
        let mut entry_insns = insns;

        // Write the local counters back and account the retired
        // instructions as fast-path. Idempotent: safe to invoke on
        // every exit edge.
        macro_rules! flush {
            () => {{
                self.state.cycles = cycles;
                self.state.insns = insns;
                self.trans.stats.fast_insns += insns - entry_insns;
                #[allow(unused_assignments)]
                {
                    entry_insns = insns;
                }
            }};
        }
        // One scalar micro-step: execute, charge, fuel-check — in
        // exactly the reference engine's order.
        macro_rules! scalar_step {
            ($s:expr) => {{
                let s = $s;
                if let Err(e) = exec_scalar(&mut self.state, s.op, s.rd, s.rs1, s.rs2, s.imm) {
                    flush!();
                    return Err(e);
                }
                cycles += s.cost as u64;
                insns += 1;
                if cycles > fuel {
                    flush!();
                    return Err(VmError::OutOfFuel);
                }
            }};
        }
        // Advance the buffer index by $n slots, exiting at the pc past
        // the end if the buffer is exhausted.
        macro_rules! advance {
            ($n:expr) => {{
                i += $n;
                if i >= len {
                    flush!();
                    return Ok(Step::At(base.wrapping_add((i as u64) * 4)));
                }
            }};
        }
        // Transfer control to buffer index $t (an i64): stay in the
        // buffer when it lands inside, exit to the equivalent pc
        // otherwise (negative indices wrap exactly like the reference
        // engine's pc arithmetic).
        macro_rules! goto {
            ($t:expr) => {{
                let t = $t;
                if (t as u64) < len as u64 {
                    i = t as usize;
                } else {
                    flush!();
                    return Ok(Step::At(base.wrapping_add((t as u64).wrapping_mul(4))));
                }
            }};
        }

        loop {
            match buf[i] {
                DInsn::Scalar(s) => {
                    scalar_step!(s);
                    advance!(1);
                }
                DInsn::Fused2 { a, b } => {
                    scalar_step!(a);
                    scalar_step!(b);
                    advance!(2);
                }
                DInsn::Branch {
                    op,
                    rd,
                    rs1,
                    cost,
                    taken_cost,
                    target,
                } => {
                    let x = self.state.reg(rd);
                    let y = self.state.reg(rs1);
                    let taken = branch_taken(op, x, y);
                    cycles += u64::from(if taken { taken_cost } else { cost });
                    insns += 1;
                    if cycles > fuel {
                        flush!();
                        return Err(VmError::OutOfFuel);
                    }
                    if taken {
                        goto!(target);
                    } else {
                        advance!(1);
                    }
                }
                DInsn::FusedBr {
                    a,
                    op,
                    rd,
                    rs1,
                    cost,
                    taken_cost,
                    target,
                } => {
                    scalar_step!(a);
                    let x = self.state.reg(rd);
                    let y = self.state.reg(rs1);
                    let taken = branch_taken(op, x, y);
                    cycles += u64::from(if taken { taken_cost } else { cost });
                    insns += 1;
                    if cycles > fuel {
                        flush!();
                        return Err(VmError::OutOfFuel);
                    }
                    if taken {
                        goto!(target);
                    } else {
                        advance!(2);
                    }
                }
                DInsn::Jump { cost, target } => {
                    cycles += cost as u64;
                    insns += 1;
                    if cycles > fuel {
                        flush!();
                        return Err(VmError::OutOfFuel);
                    }
                    goto!(target);
                }
                DInsn::Jal { cost, target } => {
                    self.state
                        .set_reg(crate::regs::RA.0, base + (i as u64 + 1) * 4);
                    cycles += cost as u64;
                    insns += 1;
                    if cycles > fuel {
                        flush!();
                        return Err(VmError::OutOfFuel);
                    }
                    goto!(target);
                }
                DInsn::Jalr { rd, rs1, cost } => {
                    let target = self.state.reg(rs1);
                    self.state.set_reg(rd, base + (i as u64 + 1) * 4);
                    cycles += cost as u64;
                    insns += 1;
                    if cycles > fuel {
                        flush!();
                        return Err(VmError::OutOfFuel);
                    }
                    // Continue internally for in-buffer targets
                    // (indirect loops); liveness can only change via a
                    // host call, which revalidates below.
                    if target >= base
                        && target < base + (len as u64) * 4
                        && (target - base).is_multiple_of(4)
                    {
                        i = ((target - base) / 4) as usize;
                    } else {
                        flush!();
                        return Ok(Step::At(target));
                    }
                }
                DInsn::Halt { cost } => {
                    // The reference engine charges halt but never
                    // fuel-checks it (the run is over).
                    cycles += cost as u64;
                    insns += 1;
                    flush!();
                    return Ok(Step::Done(ExitStatus::Halted));
                }
                DInsn::Hcall { num, cost } => {
                    // The host observes counters as of *before* this
                    // instruction retires, and may mutate them (or the
                    // code space) arbitrarily.
                    flush!();
                    self.state.hcalls += 1;
                    self.host.call(num, &mut self.state)?;
                    cycles = self.state.cycles;
                    insns = self.state.insns;
                    entry_insns = insns;
                    cycles += cost as u64;
                    insns += 1;
                    if cycles > fuel {
                        flush!();
                        return Err(VmError::OutOfFuel);
                    }
                    // The host may have compiled, freed, or patched
                    // code (tcc-cache eviction frees live functions).
                    // Leave the buffer so the outer loop revalidates.
                    if self.state.code.live_epoch() != self.trans.epoch {
                        i += 1;
                        flush!();
                        return Ok(Step::At(base.wrapping_add((i as u64) * 4)));
                    }
                    advance!(1);
                }
                DInsn::Trap { opcode } => {
                    flush!();
                    return Err(VmError::BadOpcode(opcode));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::CodeSpace;
    use crate::interp::MachineState;
    use crate::regs::{A0, AT0, ZERO};

    const ENGINES: [ExecEngine; 6] = [
        ExecEngine::DecodePerStep,
        ExecEngine::Predecoded { fuse: false },
        ExecEngine::Predecoded { fuse: true },
        ExecEngine::Threaded,
        // Adaptive at both extremes: promoted straight to threaded on
        // the first entry, and never leaving tier 0 within these tests.
        ExecEngine::Adaptive {
            fuse_after: 0,
            thread_after: 0,
            background: false,
        },
        ExecEngine::Adaptive {
            fuse_after: u32::MAX,
            thread_after: u32::MAX,
            background: false,
        },
    ];

    /// sum(1..=n) by counted loop; exercises branch, ALU, and jump.
    fn loop_code() -> (CodeSpace, u64) {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("sum");
        cs.push(Insn::i(Op::Addiw, AT0, ZERO, 0)); // acc = 0
        cs.push(Insn::i(Op::Beq, A0, ZERO, 3)); // while n != 0
        cs.push(Insn::r(Op::Addw, AT0, AT0, A0)); //   acc += n
        cs.push(Insn::i(Op::Addiw, A0, A0, -1)); //   n -= 1
        cs.push(Insn::j(Op::J, -4));
        cs.push(Insn::r(Op::Addw, A0, AT0, ZERO)); // return acc
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        (cs, addr)
    }

    fn observe(
        engine: ExecEngine,
        cs: &CodeSpace,
        addr: u64,
        args: &[u64],
        fuel: u64,
    ) -> (Result<u64, VmError>, u64, u64) {
        let mut vm = Vm::new(cs.clone(), 1 << 20);
        vm.set_engine(engine);
        vm.set_fuel(fuel);
        let r = vm.call(addr, args);
        (r, vm.cycles(), vm.insns())
    }

    #[test]
    fn engines_agree_on_loops() {
        let (cs, addr) = loop_code();
        for n in [0u64, 1, 10, 1000] {
            let reference = observe(ENGINES[0], &cs, addr, &[n], u64::MAX);
            assert_eq!(reference.0, Ok((1..=n).sum::<u64>() as u32 as u64));
            for e in &ENGINES[1..] {
                assert_eq!(observe(*e, &cs, addr, &[n], u64::MAX), reference, "{e:?}");
            }
        }
    }

    #[test]
    fn fuel_exhaustion_is_identical_at_every_budget() {
        let (cs, addr) = loop_code();
        let (_, full_cycles, _) = observe(ENGINES[0], &cs, addr, &[25], u64::MAX);
        for fuel in 0..full_cycles {
            let reference = observe(ENGINES[0], &cs, addr, &[25], fuel);
            assert_eq!(reference.0, Err(VmError::OutOfFuel));
            for e in &ENGINES[1..] {
                assert_eq!(
                    observe(*e, &cs, addr, &[25], fuel),
                    reference,
                    "fuel {fuel}"
                );
            }
        }
    }

    #[test]
    fn fusion_actually_fuses_and_caches_are_reused() {
        let (cs, addr) = loop_code();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::Predecoded { fuse: true });
        vm.call(addr, &[10]).unwrap();
        let s1 = vm.exec_stats();
        assert_eq!(s1.translations, 1);
        assert_eq!(s1.translated_words, 7);
        assert!(s1.fused_pairs > 0, "{s1:?}");
        assert_eq!(s1.slow_insns, 0);
        assert!(s1.fast_insns > 0);
        vm.call(addr, &[10]).unwrap();
        let s2 = vm.exec_stats();
        assert_eq!(s2.translations, 1, "second call reuses the translation");
        assert!((s2.hit_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn freed_code_faults_stale_with_warm_cache() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Addiw, A0, A0, 1));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        assert_eq!(vm.call(addr, &[1]).unwrap(), 2);
        vm.state_mut().code.free_function(f).unwrap();
        assert_eq!(vm.call(addr, &[1]), Err(VmError::StaleCode(addr)));
        assert!(vm.exec_stats().invalidations >= 1);
    }

    #[test]
    fn patching_live_code_invalidates_translation() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Addiw, A0, ZERO, 1));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let idx = ((addr - CODE_BASE) / 4) as usize;
        let mut vm = Vm::new(cs, 1 << 20);
        assert_eq!(vm.call(addr, &[]).unwrap(), 1);
        vm.state_mut()
            .code
            .patch(idx, Insn::i(Op::Addiw, A0, ZERO, 2));
        assert_eq!(vm.call(addr, &[]).unwrap(), 2, "stale decoded result");
    }

    #[test]
    fn host_call_freeing_running_function_faults_stale() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Hcall, ZERO, ZERO, 1));
        cs.push(Insn::i(Op::Addiw, A0, ZERO, 7));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let host = move |_num: u32, st: &mut MachineState| {
            st.code.free_function(f).unwrap();
            Ok(())
        };
        let mut vm = Vm::with_host(cs, 1 << 20, host);
        assert_eq!(vm.call(addr, &[]), Err(VmError::StaleCode(addr + 4)));
    }

    #[test]
    fn unfused_buffer_has_no_pairs() {
        let (cs, addr) = loop_code();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::Predecoded { fuse: false });
        vm.call(addr, &[3]).unwrap();
        assert_eq!(vm.exec_stats().fused_pairs, 0);
    }

    #[test]
    fn shared_translation_preseeds_identically_to_lazy_translation() {
        let (cs, addr) = loop_code();
        let start = ((addr - CODE_BASE) / 4) as usize;
        let words = cs.word_slice(start, start + 7).to_vec();
        let mut reference = Vm::new(cs.clone(), 1 << 20);
        reference.set_engine(ExecEngine::Predecoded { fuse: true });
        let want = reference.call(addr, &[10]).unwrap();
        let (want_cycles, want_insns) = (reference.cycles(), reference.insns());

        let tr = SharedTranslation::build(&words, &CostModel::default()).expect("self-contained");
        assert_eq!(tr.len(), 7);
        assert!(tr.fused_pairs() > 0, "the loop body fuses");
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::Predecoded { fuse: true });
        assert!(vm.preseed_translation(addr, &tr));
        assert_eq!(vm.exec_stats().translations, 1, "preseed counted");
        assert_eq!(vm.call(addr, &[10]).unwrap(), want);
        assert_eq!((vm.cycles(), vm.insns()), (want_cycles, want_insns));
        let s = vm.exec_stats();
        assert_eq!(s.translations, 1, "no re-translation happened");
        assert_eq!(s.slow_insns, 0, "whole run came from the shared buffer");
        // Preseeding again is an idempotent hit.
        assert!(vm.preseed_translation(addr, &tr));
        assert_eq!(vm.exec_stats().translations, 1);
    }

    #[test]
    fn shared_translation_refuses_external_targets_and_mismatches() {
        // A backward jump out of the function's own range is not
        // position-independent: build refuses it.
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("escape");
        cs.push(Insn::j(Op::J, -100));
        cs.push(Insn::ret());
        cs.finish_function(f).unwrap();
        let (_, words) = cs.function_words(f).unwrap();
        assert!(SharedTranslation::build(&words, &CostModel::default()).is_none());

        // Preseed revalidates everything about the receiving VM.
        let (cs, addr) = loop_code();
        let start = ((addr - CODE_BASE) / 4) as usize;
        let words = cs.word_slice(start, start + 7).to_vec();
        let tr = SharedTranslation::build(&words, &CostModel::default()).unwrap();
        let mut vm = Vm::new(cs.clone(), 1 << 20);
        vm.set_engine(ExecEngine::DecodePerStep);
        assert!(
            !vm.preseed_translation(addr, &tr),
            "engine without fused decoded dispatch"
        );
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::Predecoded { fuse: true });
        assert!(!vm.preseed_translation(addr + 4, &tr), "not a range start");
        assert!(!vm.preseed_translation(addr + 1, &tr), "unaligned");
        let mut costly = CostModel::default();
        costly.branch_taken_extra += 1;
        let tr2 = SharedTranslation::build(&words, &costly).unwrap();
        assert!(
            !vm.preseed_translation(addr, &tr2),
            "cost model must match the VM's"
        );
        assert_eq!(vm.exec_stats().translations, 0, "nothing was installed");
        assert_eq!(vm.call(addr, &[3]).unwrap(), 6, "VM unaffected");
    }

    #[test]
    fn decode_per_step_counts_slow_insns() {
        let (cs, addr) = loop_code();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::DecodePerStep);
        vm.call(addr, &[3]).unwrap();
        let s = vm.exec_stats();
        assert_eq!(s.fast_insns, 0);
        assert_eq!(s.slow_insns, vm.insns());
        assert_eq!(s.hit_rate(), 0.0);
    }
}
