//! The direct-threaded execution engine with basic-block fuel batching.
//!
//! The predecoded engine ([`crate::predecode`]) already hoists decode
//! and cost lookup to translation time, but still pays a `match` over
//! the decoded enum plus a fuel compare on every retired instruction.
//! This engine removes both:
//!
//! * **Direct threading.** Translation stores a handler *function
//!   pointer* in every slot (`TSlot::handler`), picked once per
//!   instruction from a fixed handler table: one specialized executor
//!   per scalar opcode (so `exec_scalar`'s 70-arm `match` constant-folds
//!   away inside each), one handler per branch predicate, and one each
//!   for jumps, calls, halt, host calls, and undecodable words. The run
//!   loop is a tight `(slot.handler)(vm, tr, frame)` dispatch.
//!
//! * **Basic-block fuel batching.** Translation splits each function
//!   into maximal straight-line scalar runs and stores, per slot, the
//!   summed cycle cost of the run *suffix* starting there
//!   (`TSlot::run_cost`) — so entering mid-run (branch targets,
//!   return addresses) still sees a correct block summary. At run
//!   entry, if the whole suffix fits in the remaining fuel it is
//!   charged once and the constituent instructions execute with no
//!   per-instruction fuel compare or counter update. Early exits
//!   reconcile: a faulting instruction (bad address, division trap)
//!   un-charges the unexecuted tail so observable `cycles`/`insns`
//!   match the reference engine exactly, and a run whose cost does
//!   *not* fit falls back to per-instruction charging so
//!   [`VmError::OutOfFuel`] lands on the exact same instruction as
//!   decode-per-step.
//!
//! # Equivalence contract
//!
//! Identical to the predecoded engine's: same results, same `cycles`,
//! same `insns`, same exit status, same error at the same instruction,
//! for every fuel budget. `tests/exec_differential.rs` sweeps fuel
//! budgets across all engines to enforce this, including budgets that
//! land exactly on block boundaries and mid-block.
//!
//! # Reconciliation rules
//!
//! With `run_cost` the summed cost of the scalar run suffix `[k0, n)`
//! entered at slot `k0`:
//!
//! 1. `cycles + run_cost <= fuel`: charge `run_cost` up front
//!    (`batched_blocks += 1`); no prefix of the run can exhaust fuel,
//!    so constituents execute unchecked. If constituent `k` faults,
//!    un-charge the suffix from `k` (the faulting instruction is
//!    neither charged nor retired, as in the reference engine) and
//!    count `fuel_reconciliations += 1`.
//! 2. Otherwise: execute the run per-instruction in reference order
//!    (execute, charge, retire, fuel-check) — exhaustion is exact.
//! 3. Branches, jumps, calls, halt, and host calls always charge
//!    individually; a host call flushes counters first (the host
//!    observes and may mutate them) and re-checks the live epoch
//!    after returning, exactly like the predecoded engine.
//!
//! # Superinstructions
//!
//! A fusion pass over the translated slots compiles the hottest fused
//! shapes the predecoded engine's table identifies into combined
//! handlers that execute the whole group with **one** dispatch:
//!
//! * **run+jump** — a scalar run whose suffix falls into an
//!   unconditional `j` (the back edge of every counted loop);
//! * **run+branch** — a scalar run whose *last* constituent feeds the
//!   following branch (`last.rd` is one of the compared registers),
//!   the same feed gate as the predecoded engine's `FusedBr`, so the
//!   ICODE fusion-aware scheduler is measurable on this engine too;
//! * **pair**/**triple** — straight-line runs of exactly two or three
//!   scalars, executed by monomorphized handlers with a compile-time
//!   trip count.
//!
//! Fusion is slot-preserving: a fused handler lives in the *first*
//! constituent's slot and every other slot keeps its unfused entry, so
//! control transfers landing mid-group dispatch normally and the
//! trap/OutOfFuel reconciliation rules above apply bit-identically.
//! The scalar part of a fused group charges by the run rules (1)/(2);
//! the trailing jump/branch charges individually per rule (3) by
//! delegating to the *control slot's own* fields — observables cannot
//! diverge from unfused execution. Translation counts the groups in
//! [`crate::predecode::ExecStats::superinstructions`]; each fused
//! dispatch counts in `fused_dispatches`, and every dispatch-loop
//! iteration in `dispatches`.

use std::fmt;
use std::sync::Arc;

use crate::code::CODE_BASE;
use crate::cost::CostModel;
use crate::error::VmError;
use crate::host::HostCall;
use crate::interp::{exec_scalar, ExitStatus, MachineState, Step, Vm, RETURN_SENTINEL};
use crate::isa::{Insn, Op};

/// Specialized scalar handlers (one per straight-line opcode).
pub const SCALAR_HANDLERS: u64 = 70;
/// Control handlers: the run-entry handler, ten branch predicates,
/// jump/jal/jalr, halt, hcall, and the undecodable-word trap.
pub const CONTROL_HANDLERS: u64 = 17;
/// Superinstruction handlers: the fused run+jump handler, ten fused
/// run+branch handlers (one per predicate, feed-gated like the
/// predecoded engine's `FusedBr`), and the monomorphized straight-line
/// pair and triple handlers.
pub const SUPER_HANDLERS: u64 = 13;
/// Total size of the direct-threaded handler table, reported in
/// [`crate::predecode::ExecStats::handlers`] once the threaded engine
/// has translated.
pub const HANDLER_TABLE_SIZE: u64 = SCALAR_HANDLERS + CONTROL_HANDLERS + SUPER_HANDLERS;

/// A scalar executor specialized to one opcode: `exec_scalar` with the
/// `op` argument constant-folded away.
type ScalarFn = fn(&mut MachineState, &SHalf) -> Result<(), VmError>;

/// One instruction of a straight-line run: unpacked operands, the
/// specialized executor, and the baked-in cycle cost. `op` rides along
/// (in what was padding) so the batched run loop can inline the
/// hottest non-faulting opcodes and skip the indirect call entirely
/// (see [`exec_half`]).
#[derive(Clone, Copy)]
pub(crate) struct SHalf {
    f: ScalarFn,
    rd: u8,
    rs1: u8,
    rs2: u8,
    op: Op,
    imm: i32,
    cost: u32,
}

/// Handler signature: executes the slot at `fr.i` (updating the frame
/// in place) and says whether dispatch continues inside the buffer.
type Handler<H> = fn(&mut Vm<H>, &ThreadedFn<H>, &mut Frame) -> Ctl;

/// Handler outcome: keep threading, or leave the buffer with a result.
enum Ctl {
    Cont,
    Exit(Result<Step, VmError>),
}

/// In-flight dispatch state, kept in locals (well, one struct of them)
/// and flushed to [`MachineState`] on every exit edge.
struct Frame {
    /// Current buffer index.
    i: usize,
    /// Shadow of `state.cycles`.
    cycles: u64,
    /// Shadow of `state.insns`.
    insns: u64,
    /// `state.insns` as of the last flush (for fast_insns accounting).
    entry_insns: u64,
    /// The fuel budget (immutable during a run).
    fuel: u64,
    /// Dispatch-loop iterations since the last flush.
    dispatches: u64,
}

/// One translated slot: the handler pointer plus the operands it needs.
/// Field meaning depends on the handler:
///
/// * scalar runs (`h_run`): `a`/`b` index the suffix `halves[a..a+b]`,
///   `run_cost` is that suffix's summed cost;
/// * branches: `rd`/`rs1` compared, `cost`/`taken_cost` charged,
///   `target` is a pre-resolved buffer index;
/// * `hcall`: `a` is the host-call number; traps: `a` is the opcode.
pub(crate) struct TSlot<H> {
    handler: Handler<H>,
    a: u32,
    b: u32,
    cost: u32,
    taken_cost: u32,
    rd: u8,
    rs1: u8,
    target: i64,
    run_cost: u64,
}

// Manual impls: `derive` would put an `H: Clone`/`H: Copy` bound on
// them, but the slot only stores a *pointer* to a handler over `H`.
impl<H> Clone for TSlot<H> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<H> Copy for TSlot<H> {}

/// One function's direct-threaded form: one [`TSlot`] per code word
/// (addressed by `(pc - base) / 4`) plus the dense scalar-run pool.
pub(crate) struct ThreadedFn<H> {
    /// Absolute address of slot index 0.
    base: u64,
    slots: Vec<TSlot<H>>,
    /// All scalar instructions, in order; each run is a contiguous
    /// range so batched execution iterates a plain slice.
    halves: Vec<SHalf>,
    /// Superinstruction groups compiled into the buffer (stat
    /// preseeding, merged on install like `SharedTranslation`'s
    /// `fused_pairs`).
    pub(crate) superinstructions: u64,
    /// Shape → count for those groups ("addw+beq", "addiw+j", ...),
    /// merged into the cache-wide histogram on install.
    pub(crate) shapes: Vec<(String, u64)>,
}

impl<H> fmt::Debug for ThreadedFn<H> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadedFn")
            .field("base", &self.base)
            .field("slots", &self.slots.len())
            .field("halves", &self.halves.len())
            .field("superinstructions", &self.superinstructions)
            .finish()
    }
}

/// Returns the specialized executor for a scalar opcode. Each arm
/// instantiates [`exec_scalar`] with a constant `Op`, so the inner
/// dispatch `match` folds away and the handler body is just that
/// opcode's semantics.
fn scalar_fn(op: Op) -> ScalarFn {
    macro_rules! h {
        ($op:ident) => {{
            fn go(st: &mut MachineState, s: &SHalf) -> Result<(), VmError> {
                exec_scalar(st, Op::$op, s.rd, s.rs1, s.rs2, s.imm)
            }
            go
        }};
    }
    match op {
        Op::Nop => h!(Nop),
        Op::Addw => h!(Addw),
        Op::Subw => h!(Subw),
        Op::Mulw => h!(Mulw),
        Op::Divw => h!(Divw),
        Op::Divuw => h!(Divuw),
        Op::Remw => h!(Remw),
        Op::Remuw => h!(Remuw),
        Op::Addd => h!(Addd),
        Op::Subd => h!(Subd),
        Op::Muld => h!(Muld),
        Op::Divd => h!(Divd),
        Op::Divud => h!(Divud),
        Op::Remd => h!(Remd),
        Op::Remud => h!(Remud),
        Op::And => h!(And),
        Op::Or => h!(Or),
        Op::Xor => h!(Xor),
        Op::Sllw => h!(Sllw),
        Op::Srlw => h!(Srlw),
        Op::Sraw => h!(Sraw),
        Op::Slld => h!(Slld),
        Op::Srld => h!(Srld),
        Op::Srad => h!(Srad),
        Op::Seq => h!(Seq),
        Op::Sne => h!(Sne),
        Op::Sltw => h!(Sltw),
        Op::Sltuw => h!(Sltuw),
        Op::Sltd => h!(Sltd),
        Op::Sltud => h!(Sltud),
        Op::Addiw => h!(Addiw),
        Op::Addid => h!(Addid),
        Op::Andi => h!(Andi),
        Op::Ori => h!(Ori),
        Op::Xori => h!(Xori),
        Op::Slliw => h!(Slliw),
        Op::Srliw => h!(Srliw),
        Op::Sraiw => h!(Sraiw),
        Op::Sllid => h!(Sllid),
        Op::Srlid => h!(Srlid),
        Op::Sraid => h!(Sraid),
        Op::Sethi => h!(Sethi),
        Op::Lb => h!(Lb),
        Op::Lbu => h!(Lbu),
        Op::Lh => h!(Lh),
        Op::Lhu => h!(Lhu),
        Op::Lw => h!(Lw),
        Op::Lwu => h!(Lwu),
        Op::Ld => h!(Ld),
        Op::Fld => h!(Fld),
        Op::Sb => h!(Sb),
        Op::Sh => h!(Sh),
        Op::Sw => h!(Sw),
        Op::Sd => h!(Sd),
        Op::Fsd => h!(Fsd),
        Op::Fadd => h!(Fadd),
        Op::Fsub => h!(Fsub),
        Op::Fmul => h!(Fmul),
        Op::Fdiv => h!(Fdiv),
        Op::Fneg => h!(Fneg),
        Op::Fmov => h!(Fmov),
        Op::Feq => h!(Feq),
        Op::Flt => h!(Flt),
        Op::Fle => h!(Fle),
        Op::Cvtwd => h!(Cvtwd),
        Op::Cvtdw => h!(Cvtdw),
        Op::Cvtld => h!(Cvtld),
        Op::Cvtdl => h!(Cvtdl),
        Op::Fmvdx => h!(Fmvdx),
        Op::Fmvxd => h!(Fmvxd),
        // Control opcodes never reach here: translation routes them to
        // their own handlers.
        Op::Halt | Op::Hcall | Op::J | Op::Jal | Op::Jalr => unreachable!("control op {op:?}"),
        op if op.is_branch() => unreachable!("branch op {op:?}"),
        #[allow(unreachable_patterns)]
        op => unreachable!("unrouted op {op:?}"),
    }
}

/// Returns the handler for one branch predicate, with `branch_taken`'s
/// dispatch constant-folded away.
fn branch_fn<H: HostCall>(op: Op) -> Handler<H> {
    macro_rules! b {
        ($op:ident) => {{
            fn go<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
                let slot = &tr.slots[fr.i];
                let x = vm.state.reg(slot.rd);
                let y = vm.state.reg(slot.rs1);
                let taken = crate::interp::branch_taken(Op::$op, x, y);
                branch_common(vm, tr, fr, taken)
            }
            go::<H>
        }};
    }
    match op {
        Op::Beq => b!(Beq),
        Op::Bne => b!(Bne),
        Op::Bltw => b!(Bltw),
        Op::Bgew => b!(Bgew),
        Op::Bltuw => b!(Bltuw),
        Op::Bgeuw => b!(Bgeuw),
        Op::Bltd => b!(Bltd),
        Op::Bged => b!(Bged),
        Op::Bltud => b!(Bltud),
        Op::Bgeud => b!(Bgeud),
        op => unreachable!("not a branch: {op:?}"),
    }
}

/// Writes the shadow counters back to machine state and accounts the
/// retired instructions as fast-path. Idempotent.
#[inline(always)]
fn flush<H: HostCall>(vm: &mut Vm<H>, fr: &mut Frame) {
    vm.state.cycles = fr.cycles;
    vm.state.insns = fr.insns;
    vm.trans.stats.fast_insns += fr.insns - fr.entry_insns;
    fr.entry_insns = fr.insns;
    vm.trans.stats.dispatches += fr.dispatches;
    fr.dispatches = 0;
}

/// Advances `n` slots, exiting at the pc past the end if the buffer is
/// exhausted (mirrors the predecoded engine's `advance!`).
#[inline(always)]
fn advance<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame, n: usize) -> Ctl {
    fr.i += n;
    if fr.i >= tr.slots.len() {
        flush(vm, fr);
        return Ctl::Exit(Ok(Step::At(tr.base.wrapping_add((fr.i as u64) * 4))));
    }
    Ctl::Cont
}

/// Transfers control to buffer index `t`: stays inside when it lands
/// in-buffer, exits to the equivalent pc otherwise (negative indices
/// wrap exactly like the reference engine's pc arithmetic).
#[inline(always)]
fn goto<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame, t: i64) -> Ctl {
    if (t as u64) < tr.slots.len() as u64 {
        fr.i = t as usize;
        Ctl::Cont
    } else {
        flush(vm, fr);
        Ctl::Exit(Ok(Step::At(
            tr.base.wrapping_add((t as u64).wrapping_mul(4)),
        )))
    }
}

/// Shared charge/retire/fuel-check/transfer tail of every branch
/// handler.
#[inline(always)]
fn branch_common<H: HostCall>(
    vm: &mut Vm<H>,
    tr: &ThreadedFn<H>,
    fr: &mut Frame,
    taken: bool,
) -> Ctl {
    let slot = &tr.slots[fr.i];
    fr.cycles += u64::from(if taken { slot.taken_cost } else { slot.cost });
    fr.insns += 1;
    if fr.cycles > fr.fuel {
        flush(vm, fr);
        return Ctl::Exit(Err(VmError::OutOfFuel));
    }
    if taken {
        goto(vm, tr, fr, slot.target)
    } else {
        advance(vm, tr, fr, 1)
    }
}

/// Executes one constituent of a scalar run. The hottest opcodes are
/// dispatched inline — each arm calls [`exec_scalar`] with a
/// *constant* `Op`, so the semantics are literally the shared
/// interpreter's with its 70-arm `match` folded away, and the run
/// loop pays a predictable jump instead of an indirect call (the
/// call's register spills were the last per-instruction tax). Cold
/// opcodes fall back to the slot's specialized function pointer,
/// which executes identically.
#[inline(always)]
fn exec_half(st: &mut MachineState, s: &SHalf) -> Result<(), VmError> {
    macro_rules! i {
        ($op:ident) => {
            exec_scalar(st, Op::$op, s.rd, s.rs1, s.rs2, s.imm)
        };
    }
    match s.op {
        Op::Addw => i!(Addw),
        Op::Subw => i!(Subw),
        Op::Mulw => i!(Mulw),
        Op::Addd => i!(Addd),
        Op::And => i!(And),
        Op::Or => i!(Or),
        Op::Xor => i!(Xor),
        Op::Sllw => i!(Sllw),
        Op::Srlw => i!(Srlw),
        Op::Sraw => i!(Sraw),
        Op::Seq => i!(Seq),
        Op::Sne => i!(Sne),
        Op::Sltw => i!(Sltw),
        Op::Sltd => i!(Sltd),
        Op::Addiw => i!(Addiw),
        Op::Addid => i!(Addid),
        Op::Andi => i!(Andi),
        Op::Ori => i!(Ori),
        Op::Xori => i!(Xori),
        Op::Slliw => i!(Slliw),
        Op::Srliw => i!(Srliw),
        Op::Sraiw => i!(Sraiw),
        Op::Sllid => i!(Sllid),
        Op::Srlid => i!(Srlid),
        Op::Sraid => i!(Sraid),
        Op::Sethi => i!(Sethi),
        Op::Lw => i!(Lw),
        Op::Ld => i!(Ld),
        Op::Sw => i!(Sw),
        Op::Sd => i!(Sd),
        _ => (s.f)(st, s),
    }
}

/// Executes one scalar run (`halves`, summed suffix cost `run_cost`)
/// under the fuel-batching reconciliation rules, leaving `fr.i`
/// untouched. Returns `Some(exit)` when the run faulted or exhausted
/// fuel (counters already flushed), `None` when every constituent
/// retired. `#[inline(always)]` so each caller — the generic run
/// handler and every superinstruction handler — monomorphizes its own
/// copy (with a compile-time trip count when the slice length is
/// statically known).
#[inline(always)]
fn exec_run<H: HostCall>(
    vm: &mut Vm<H>,
    fr: &mut Frame,
    halves: &[SHalf],
    run_cost: u64,
) -> Option<Ctl> {
    let n = halves.len();
    if let Some(total) = fr.cycles.checked_add(run_cost) {
        if total <= fr.fuel {
            vm.trans.stats.batched_blocks += 1;
            fr.cycles = total;
            for (k, s) in halves.iter().enumerate() {
                if let Err(e) = exec_half(&mut vm.state, s) {
                    // Un-charge the unexecuted tail (the faulting
                    // instruction included): observable counters must
                    // match a reference engine that stopped here.
                    let tail: u64 = halves[k..].iter().map(|h| u64::from(h.cost)).sum();
                    fr.cycles -= tail;
                    fr.insns += k as u64;
                    vm.trans.stats.fuel_reconciliations += 1;
                    flush(vm, fr);
                    return Some(Ctl::Exit(Err(e)));
                }
            }
            fr.insns += n as u64;
            return None;
        }
    }
    // The run does not fit (or the cycle counter would saturate):
    // per-instruction reference order, so exhaustion is exact.
    for s in halves {
        if let Err(e) = exec_half(&mut vm.state, s) {
            flush(vm, fr);
            return Some(Ctl::Exit(Err(e)));
        }
        fr.cycles += u64::from(s.cost);
        fr.insns += 1;
        if fr.cycles > fr.fuel {
            flush(vm, fr);
            return Some(Ctl::Exit(Err(VmError::OutOfFuel)));
        }
    }
    None
}

/// Scalar-run entry: the fuel-batching handler (reconciliation rules
/// in the module docs).
fn h_run<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    let slot = &tr.slots[fr.i];
    let n = slot.b as usize;
    let halves = &tr.halves[slot.a as usize..slot.a as usize + n];
    if let Some(exit) = exec_run(vm, fr, halves, slot.run_cost) {
        return exit;
    }
    advance(vm, tr, fr, n)
}

/// Superinstruction: scalar run + unconditional jump, one dispatch.
/// The run part follows the batching rules; the jump then charges
/// individually off its *own* slot (rule 3), exactly as if dispatched.
fn h_run_j<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    vm.trans.stats.fused_dispatches += 1;
    let slot = &tr.slots[fr.i];
    let n = slot.b as usize;
    let halves = &tr.halves[slot.a as usize..slot.a as usize + n];
    if let Some(exit) = exec_run(vm, fr, halves, slot.run_cost) {
        return exit;
    }
    fr.i += n;
    h_jump(vm, tr, fr)
}

/// Superinstruction: straight-line pair, one dispatch with a
/// compile-time trip count of 2.
fn h_pair<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    vm.trans.stats.fused_dispatches += 1;
    let slot = &tr.slots[fr.i];
    let a = slot.a as usize;
    let halves: &[SHalf; 2] = tr.halves[a..a + 2].try_into().expect("pair slot covers 2");
    if let Some(exit) = exec_run(vm, fr, halves, slot.run_cost) {
        return exit;
    }
    advance(vm, tr, fr, 2)
}

/// Superinstruction: straight-line triple, one dispatch with a
/// compile-time trip count of 3.
fn h_triple<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    vm.trans.stats.fused_dispatches += 1;
    let slot = &tr.slots[fr.i];
    let a = slot.a as usize;
    let halves: &[SHalf; 3] = tr.halves[a..a + 3]
        .try_into()
        .expect("triple slot covers 3");
    if let Some(exit) = exec_run(vm, fr, halves, slot.run_cost) {
        return exit;
    }
    advance(vm, tr, fr, 3)
}

/// Returns the superinstruction handler fusing a scalar run with the
/// branch predicate `op`, with `branch_taken`'s dispatch
/// constant-folded away. After the run retires, `fr.i` steps onto the
/// branch's own slot, so the predicate reads and charges exactly the
/// fields an unfused dispatch would.
fn run_branch_fn<H: HostCall>(op: Op) -> Handler<H> {
    macro_rules! rb {
        ($op:ident) => {{
            fn go<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
                vm.trans.stats.fused_dispatches += 1;
                let slot = &tr.slots[fr.i];
                let n = slot.b as usize;
                let halves = &tr.halves[slot.a as usize..slot.a as usize + n];
                if let Some(exit) = exec_run(vm, fr, halves, slot.run_cost) {
                    return exit;
                }
                fr.i += n;
                let bslot = &tr.slots[fr.i];
                let x = vm.state.reg(bslot.rd);
                let y = vm.state.reg(bslot.rs1);
                let taken = crate::interp::branch_taken(Op::$op, x, y);
                branch_common(vm, tr, fr, taken)
            }
            go::<H>
        }};
    }
    match op {
        Op::Beq => rb!(Beq),
        Op::Bne => rb!(Bne),
        Op::Bltw => rb!(Bltw),
        Op::Bgew => rb!(Bgew),
        Op::Bltuw => rb!(Bltuw),
        Op::Bgeuw => rb!(Bgeuw),
        Op::Bltd => rb!(Bltd),
        Op::Bged => rb!(Bged),
        Op::Bltud => rb!(Bltud),
        Op::Bgeud => rb!(Bgeud),
        op => unreachable!("not a branch: {op:?}"),
    }
}

fn h_jump<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    let slot = &tr.slots[fr.i];
    fr.cycles += u64::from(slot.cost);
    fr.insns += 1;
    if fr.cycles > fr.fuel {
        flush(vm, fr);
        return Ctl::Exit(Err(VmError::OutOfFuel));
    }
    goto(vm, tr, fr, slot.target)
}

fn h_jal<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    let slot = &tr.slots[fr.i];
    vm.state
        .set_reg(crate::regs::RA.0, tr.base + (fr.i as u64 + 1) * 4);
    fr.cycles += u64::from(slot.cost);
    fr.insns += 1;
    if fr.cycles > fr.fuel {
        flush(vm, fr);
        return Ctl::Exit(Err(VmError::OutOfFuel));
    }
    goto(vm, tr, fr, slot.target)
}

fn h_jalr<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    let slot = &tr.slots[fr.i];
    let target = vm.state.reg(slot.rs1);
    vm.state.set_reg(slot.rd, tr.base + (fr.i as u64 + 1) * 4);
    fr.cycles += u64::from(slot.cost);
    fr.insns += 1;
    if fr.cycles > fr.fuel {
        flush(vm, fr);
        return Ctl::Exit(Err(VmError::OutOfFuel));
    }
    // Stay in-buffer for indirect loops; liveness can only change via
    // a host call, which revalidates.
    let len = tr.slots.len() as u64;
    if target >= tr.base && target < tr.base + len * 4 && (target - tr.base).is_multiple_of(4) {
        fr.i = ((target - tr.base) / 4) as usize;
        Ctl::Cont
    } else {
        flush(vm, fr);
        Ctl::Exit(Ok(Step::At(target)))
    }
}

fn h_halt<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    // Charged but never fuel-checked (the run is over) — reference
    // engine behavior.
    let slot = &tr.slots[fr.i];
    fr.cycles += u64::from(slot.cost);
    fr.insns += 1;
    flush(vm, fr);
    Ctl::Exit(Ok(Step::Done(ExitStatus::Halted)))
}

fn h_hcall<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    let slot = &tr.slots[fr.i];
    let num = slot.a;
    let cost = u64::from(slot.cost);
    // The host observes counters as of before this instruction retires,
    // and may mutate them (or the code space) arbitrarily.
    flush(vm, fr);
    vm.state.hcalls += 1;
    if let Err(e) = vm.host.call(num, &mut vm.state) {
        return Ctl::Exit(Err(e));
    }
    fr.cycles = vm.state.cycles;
    fr.insns = vm.state.insns;
    fr.entry_insns = fr.insns;
    fr.cycles += cost;
    fr.insns += 1;
    if fr.cycles > fr.fuel {
        flush(vm, fr);
        return Ctl::Exit(Err(VmError::OutOfFuel));
    }
    if vm.state.code.live_epoch() != vm.trans.epoch {
        // The host freed or patched code; leave the buffer so the
        // outer loop revalidates.
        fr.i += 1;
        flush(vm, fr);
        return Ctl::Exit(Ok(Step::At(tr.base.wrapping_add((fr.i as u64) * 4))));
    }
    advance(vm, tr, fr, 1)
}

fn h_trap<H: HostCall>(vm: &mut Vm<H>, tr: &ThreadedFn<H>, fr: &mut Frame) -> Ctl {
    let slot = &tr.slots[fr.i];
    flush(vm, fr);
    Ctl::Exit(Err(VmError::BadOpcode(slot.a as u8)))
}

/// Buffer index a control transfer at index `i` with word offset `imm`
/// lands on.
fn rel_target(i: usize, imm: i32) -> i64 {
    i as i64 + 1 + imm as i64
}

fn icost(c: u64) -> u32 {
    u32::try_from(c).expect("per-insn cost fits u32")
}

/// Translates the sealed words of the range starting at word index
/// `start` into a direct-threaded buffer with per-slot run-suffix cost
/// summaries.
///
/// Takes the raw words (not the `CodeSpace`) so the adaptive engine's
/// background worker can run it over a snapshot without holding any
/// borrow of the VM; `start` only positions the buffer's base address.
pub(crate) fn translate<H: HostCall>(
    words: &[u32],
    start: usize,
    cost: &CostModel,
) -> ThreadedFn<H> {
    /// What kind of slot translation produced — consumed by the
    /// superinstruction fusion pass below.
    enum CtlKind {
        Scalar,
        Jump,
        Branch(Op),
        Other,
    }
    let mut slots: Vec<TSlot<H>> = Vec::with_capacity(words.len());
    let mut halves: Vec<SHalf> = Vec::with_capacity(words.len());
    let mut half_ops: Vec<Op> = Vec::with_capacity(words.len());
    let mut kinds: Vec<CtlKind> = Vec::with_capacity(words.len());
    let blank = |handler: Handler<H>| TSlot {
        handler,
        a: 0,
        b: 0,
        cost: 0,
        taken_cost: 0,
        rd: 0,
        rs1: 0,
        target: 0,
        run_cost: 0,
    };
    for (i, &word) in words.iter().enumerate() {
        let insn = match Insn::decode(word) {
            Ok(insn) => insn,
            Err(_) => {
                let mut t = blank(h_trap::<H>);
                t.a = u32::from((word >> 24) as u8);
                slots.push(t);
                kinds.push(CtlKind::Other);
                continue;
            }
        };
        let c = icost(cost.cost(insn.op));
        let slot = match insn.op {
            Op::Halt => {
                let mut t = blank(h_halt::<H>);
                t.cost = c;
                t
            }
            Op::Hcall => {
                let mut t = blank(h_hcall::<H>);
                t.a = insn.imm as u32;
                t.cost = c;
                t
            }
            Op::J => {
                let mut t = blank(h_jump::<H>);
                t.cost = c;
                t.target = rel_target(i, insn.imm);
                t
            }
            Op::Jal => {
                let mut t = blank(h_jal::<H>);
                t.cost = c;
                t.target = rel_target(i, insn.imm);
                t
            }
            Op::Jalr => {
                let mut t = blank(h_jalr::<H>);
                t.rd = insn.rd;
                t.rs1 = insn.rs1;
                t.cost = c;
                t
            }
            op if op.is_branch() => {
                let mut t = blank(branch_fn::<H>(op));
                t.rd = insn.rd;
                t.rs1 = insn.rs1;
                t.cost = c;
                t.taken_cost = icost(cost.cost(op) + cost.branch_taken_extra);
                t.target = rel_target(i, insn.imm);
                t
            }
            op => {
                let mut t = blank(h_run::<H>);
                t.a = u32::try_from(halves.len()).expect("function fits u32 slots");
                t.b = 1;
                t.run_cost = u64::from(c);
                halves.push(SHalf {
                    f: scalar_fn(op),
                    rd: insn.rd,
                    rs1: insn.rs1,
                    rs2: insn.rs2,
                    op,
                    imm: insn.imm,
                    cost: c,
                });
                half_ops.push(op);
                t
            }
        };
        slots.push(slot);
        kinds.push(match insn.op {
            Op::J => CtlKind::Jump,
            Op::Halt | Op::Hcall | Op::Jal | Op::Jalr => CtlKind::Other,
            op if op.is_branch() => CtlKind::Branch(op),
            _ => CtlKind::Scalar,
        });
    }
    // Backward pass: extend each scalar slot's run summary with its
    // successor's, turning `b`/`run_cost` into suffix length and cost.
    for i in (0..slots.len().saturating_sub(1)).rev() {
        if slots[i].b > 0 && slots[i + 1].b > 0 {
            slots[i].b += slots[i + 1].b;
            slots[i].run_cost += slots[i + 1].run_cost;
        }
    }
    // Superinstruction fusion pass (slot-preserving: only the group's
    // first slot changes handler, so mid-group control transfers still
    // dispatch the unfused entries). Control fusion wins over the
    // straight-line pair/triple forms — it saves a dispatch per loop
    // iteration rather than per straight-line entry.
    let mut superinstructions = 0u64;
    let mut shape_counts: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
    for i in 0..slots.len() {
        let n = slots[i].b as usize;
        if n == 0 {
            continue; // not a scalar slot
        }
        let last = slots[i].a as usize + n - 1;
        let j = i + n;
        let shape = match kinds.get(j) {
            Some(CtlKind::Jump) => {
                slots[i].handler = h_run_j::<H>;
                format!("{}+j", half_ops[last].mnemonic())
            }
            Some(&CtlKind::Branch(bop))
                if halves[last].rd == slots[j].rd || halves[last].rd == slots[j].rs1 =>
            {
                slots[i].handler = run_branch_fn::<H>(bop);
                format!("{}+{}", half_ops[last].mnemonic(), bop.mnemonic())
            }
            _ if n == 2 => {
                slots[i].handler = h_pair::<H>;
                let a = slots[i].a as usize;
                format!("{}+{}", half_ops[a].mnemonic(), half_ops[a + 1].mnemonic())
            }
            _ if n == 3 => {
                slots[i].handler = h_triple::<H>;
                let a = slots[i].a as usize;
                format!(
                    "{}+{}+{}",
                    half_ops[a].mnemonic(),
                    half_ops[a + 1].mnemonic(),
                    half_ops[a + 2].mnemonic()
                )
            }
            _ => continue,
        };
        superinstructions += 1;
        *shape_counts.entry(shape).or_insert(0) += 1;
    }
    ThreadedFn {
        base: CODE_BASE + (start as u64) * 4,
        slots,
        halves,
        superinstructions,
        shapes: shape_counts.into_iter().collect(),
    }
}

impl<H: HostCall> Vm<H> {
    /// The direct-threaded engine's run loop. Structure matches
    /// `run_predecoded`: threaded dispatch where a translation exists,
    /// reference-engine single steps where one doesn't, so every fault
    /// is raised by the exact same code on both paths.
    pub(crate) fn run_threaded(&mut self, mut pc: u64) -> Result<ExitStatus, VmError> {
        loop {
            if pc == RETURN_SENTINEL {
                return Ok(ExitStatus::Returned);
            }
            let step = match self.threaded_at(pc) {
                Some(tr) => self.dispatch_threaded(&tr, pc)?,
                None => {
                    let step = self.step_slow(pc)?;
                    self.trans.stats.slow_insns += 1;
                    step
                }
            };
            match step {
                Step::At(next) => pc = next,
                Step::Done(status) => return Ok(status),
            }
        }
    }

    /// Looks up (or lazily builds) the threaded buffer covering `pc`,
    /// validating the cache against the code space's live epoch first.
    pub(crate) fn threaded_at(&mut self, pc: u64) -> Option<Arc<ThreadedFn<H>>> {
        let epoch = self.state.code.live_epoch();
        if epoch != self.trans.epoch {
            self.trans.clear();
            self.trans.epoch = epoch;
            self.trans.stats.invalidations += 1;
        }
        if pc < CODE_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / 4) as usize;
        if let Some(Some(tr)) = self.trans.tmap.get(idx) {
            return Some(Arc::clone(tr));
        }
        let (start, end) = self.state.code.live_range_containing(idx)?;
        let tr = Arc::new(translate::<H>(
            self.state.code.word_slice(start, end),
            start,
            &self.cost,
        ));
        let need = self.state.code.next_index();
        if self.trans.tmap.len() < need {
            self.trans.tmap.resize(need, None);
        }
        for slot in self.trans.tmap[start..end].iter_mut() {
            *slot = Some(Arc::clone(&tr));
        }
        self.trans.stats.translations += 1;
        self.trans.stats.translated_words += (end - start) as u64;
        self.trans.stats.handlers = HANDLER_TABLE_SIZE;
        self.trans.stats.superinstructions += tr.superinstructions;
        for (shape, count) in &tr.shapes {
            *self.trans.shapes.entry(shape.clone()).or_insert(0) += count;
        }
        Some(tr)
    }

    /// The tight loop: call the current slot's handler until control
    /// leaves the buffer, a run terminates, or an error is raised.
    pub(crate) fn dispatch_threaded(
        &mut self,
        tr: &ThreadedFn<H>,
        pc: u64,
    ) -> Result<Step, VmError> {
        let mut fr = Frame {
            i: ((pc - tr.base) / 4) as usize,
            cycles: self.state.cycles,
            insns: self.state.insns,
            entry_insns: self.state.insns,
            fuel: self.fuel,
            dispatches: 0,
        };
        loop {
            fr.dispatches += 1;
            let handler = tr.slots[fr.i].handler;
            match handler(self, tr, &mut fr) {
                Ctl::Cont => {}
                Ctl::Exit(r) => return r,
            }
        }
    }

    /// Superinstruction shape frequencies accumulated over this VM's
    /// threaded translations, sorted by descending count (ties by
    /// name). Each entry is `("addw+beq", groups_compiled)`.
    pub fn fused_shape_histogram(&self) -> Vec<(String, u64)> {
        let mut v: Vec<(String, u64)> = self
            .trans
            .shapes
            .iter()
            .map(|(s, &c)| (s.clone(), c))
            .collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        v
    }
}

/// Exposed for [`crate::predecode::ExecStats::handlers`] consumers
/// that want the split.
pub fn handler_table_sizes() -> (u64, u64, u64) {
    (SCALAR_HANDLERS, CONTROL_HANDLERS, SUPER_HANDLERS)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::CodeSpace;
    use crate::predecode::ExecEngine;
    use crate::regs::{A0, AT0, ZERO};

    /// sum(1..=n) by counted loop (same shape as predecode's tests).
    fn loop_code() -> (CodeSpace, u64) {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("sum");
        cs.push(Insn::i(Op::Addiw, AT0, ZERO, 0));
        cs.push(Insn::i(Op::Beq, A0, ZERO, 3));
        cs.push(Insn::r(Op::Addw, AT0, AT0, A0));
        cs.push(Insn::i(Op::Addiw, A0, A0, -1));
        cs.push(Insn::j(Op::J, -4));
        cs.push(Insn::r(Op::Addw, A0, AT0, ZERO));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        (cs, addr)
    }

    fn threaded_vm(cs: &CodeSpace) -> Vm {
        let mut vm = Vm::new(cs.clone(), 1 << 20);
        vm.set_engine(ExecEngine::Threaded);
        vm
    }

    #[test]
    fn threaded_matches_reference_results_and_counters() {
        let (cs, addr) = loop_code();
        for n in [0u64, 1, 10, 500] {
            let mut reference = Vm::new(cs.clone(), 1 << 20);
            reference.set_engine(ExecEngine::DecodePerStep);
            let want = reference.call(addr, &[n]);
            let mut vm = threaded_vm(&cs);
            assert_eq!(vm.call(addr, &[n]), want);
            assert_eq!(vm.cycles(), reference.cycles());
            assert_eq!(vm.insns(), reference.insns());
        }
    }

    #[test]
    fn fuel_exhaustion_identical_at_every_budget() {
        let (cs, addr) = loop_code();
        let mut full = threaded_vm(&cs);
        full.call(addr, &[20]).unwrap();
        let total = full.cycles();
        for fuel in 0..total {
            let mut reference = Vm::new(cs.clone(), 1 << 20);
            reference.set_engine(ExecEngine::DecodePerStep);
            reference.set_fuel(fuel);
            let want = (
                reference.call(addr, &[20]),
                reference.cycles(),
                reference.insns(),
            );
            assert_eq!(want.0, Err(VmError::OutOfFuel));
            let mut vm = threaded_vm(&cs);
            vm.set_fuel(fuel);
            let got = (vm.call(addr, &[20]), vm.cycles(), vm.insns());
            assert_eq!(got, want, "fuel {fuel}");
        }
    }

    #[test]
    fn blocks_are_batched_and_reported() {
        let (cs, addr) = loop_code();
        let mut vm = threaded_vm(&cs);
        vm.call(addr, &[10]).unwrap();
        let s = vm.exec_stats();
        assert!(s.batched_blocks > 0, "{s:?}");
        assert_eq!(s.fuel_reconciliations, 0);
        assert_eq!(s.handlers, HANDLER_TABLE_SIZE);
        assert_eq!(s.slow_insns, 0);
        assert_eq!(s.fast_insns, vm.insns());
        assert_eq!(s.translations, 1);
        vm.call(addr, &[10]).unwrap();
        assert_eq!(vm.exec_stats().translations, 1, "translation reused");
    }

    /// Countdown loop whose decrement feeds the backward branch: the
    /// `addiw a0, a0, -1; bne a0, zero` tail compiles to a run+branch
    /// superinstruction, and the loop back edge dispatches once per
    /// iteration instead of twice.
    fn feeding_loop_code() -> (CodeSpace, u64) {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("sum_feed");
        cs.push(Insn::i(Op::Addiw, AT0, ZERO, 0));
        cs.push(Insn::r(Op::Addw, AT0, AT0, A0)); // loop head (index 1)
        cs.push(Insn::i(Op::Addiw, A0, A0, -1));
        cs.push(Insn::i(Op::Bne, A0, ZERO, -3)); // back to index 1
        cs.push(Insn::r(Op::Addw, A0, AT0, ZERO));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        (cs, addr)
    }

    #[test]
    fn superinstructions_compiled_and_dispatched() {
        let (cs, addr) = loop_code();
        let mut vm = threaded_vm(&cs);
        vm.call(addr, &[10]).unwrap();
        let s = vm.exec_stats();
        // The loop body (addw; addiw) + back-edge `j` fuses.
        assert!(s.superinstructions > 0, "{s:?}");
        assert!(s.fused_dispatches > 0, "{s:?}");
        assert!(s.dispatches >= s.fused_dispatches, "{s:?}");
        assert!(s.fused_dispatch_rate() > 0.0 && s.fused_dispatch_rate() <= 1.0);
        // Batching + fusion: far fewer dispatches than instructions.
        assert!(
            s.dispatches_per_insn() < 1.0,
            "dispatches_per_insn {} (stats {s:?})",
            s.dispatches_per_insn()
        );
        let shapes = vm.fused_shape_histogram();
        assert!(
            shapes.iter().any(|(name, c)| name == "addiw+j" && *c > 0),
            "{shapes:?}"
        );
    }

    #[test]
    fn run_branch_superinstruction_matches_reference_at_every_budget() {
        let (cs, addr) = feeding_loop_code();
        let mut vm = threaded_vm(&cs);
        vm.call(addr, &[12]).unwrap();
        let shapes = vm.fused_shape_histogram();
        assert!(
            shapes.iter().any(|(name, _)| name == "addiw+bne"),
            "feed-gated run+branch must fuse: {shapes:?}"
        );
        let total = vm.cycles();
        // Sweep every budget, straddling each superinstruction group
        // boundary mid-group: results, counters, and the exhaustion
        // point must be bit-identical to the reference engine.
        for fuel in 0..=total {
            let mut reference = Vm::new(cs.clone(), 1 << 20);
            reference.set_engine(ExecEngine::DecodePerStep);
            reference.set_fuel(fuel);
            let want = (
                reference.call(addr, &[12]),
                reference.cycles(),
                reference.insns(),
            );
            let mut vm = threaded_vm(&cs);
            vm.set_fuel(fuel);
            let got = (vm.call(addr, &[12]), vm.cycles(), vm.insns());
            assert_eq!(got, want, "fuel {fuel}");
        }
    }

    #[test]
    fn mid_group_entry_dispatches_unfused_slots_identically() {
        // Jump into the *middle* of a fused scalar group: the landing
        // slot keeps its own (fused-suffix or plain) entry, so the
        // observables match the reference engine exactly.
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("mid");
        cs.push(Insn::j(Op::J, 1)); // skip the first scalar
        cs.push(Insn::i(Op::Addiw, AT0, ZERO, 100)); // group head
        cs.push(Insn::i(Op::Addiw, A0, A0, 1)); // mid-group landing pad
        cs.push(Insn::r(Op::Addw, A0, A0, A0));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let mut reference = Vm::new(cs.clone(), 1 << 20);
        reference.set_engine(ExecEngine::DecodePerStep);
        let want = (
            reference.call(addr, &[5]),
            reference.cycles(),
            reference.insns(),
        );
        let mut vm = threaded_vm(&cs);
        let got = (vm.call(addr, &[5]), vm.cycles(), vm.insns());
        assert_eq!(got, want);
    }

    #[test]
    fn mid_run_fault_reconciles_exactly() {
        // addiw; divw (by zero: faults); addiw — the fault lands inside
        // a batched 3-scalar run and must leave counters exactly as the
        // reference engine does (prefix retired, fault uncharged).
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Addiw, AT0, ZERO, 5));
        cs.push(Insn::r(Op::Divw, A0, AT0, ZERO));
        cs.push(Insn::i(Op::Addiw, A0, A0, 1));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();

        let mut reference = Vm::new(cs.clone(), 1 << 20);
        reference.set_engine(ExecEngine::DecodePerStep);
        let want = (
            reference.call(addr, &[]),
            reference.cycles(),
            reference.insns(),
        );
        assert!(want.0.is_err(), "division by zero must fault");

        let mut vm = threaded_vm(&cs);
        let got = (vm.call(addr, &[]), vm.cycles(), vm.insns());
        assert_eq!(got, want);
        assert_eq!(vm.exec_stats().fuel_reconciliations, 1);
    }

    #[test]
    fn tight_budget_falls_back_to_per_insn_charging() {
        let (cs, addr) = loop_code();
        // Pick a budget that exhausts mid-loop: batched entry must not
        // overshoot, so the engine switches to per-instruction mode.
        let mut vm = threaded_vm(&cs);
        vm.set_fuel(3);
        assert_eq!(vm.call(addr, &[100]), Err(VmError::OutOfFuel));
        assert!(vm.cycles() <= 4, "never overshoots by more than one insn");
    }
}
