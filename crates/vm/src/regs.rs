//! Register conventions (the machine's ABI).
//!
//! | registers | role | saved by |
//! |---|---|---|
//! | `r0` | hardwired zero | — |
//! | `r1` (`ra`) | return address | caller |
//! | `r2` (`sp`) | stack pointer | callee |
//! | `r3` (`fp`) | frame pointer | callee |
//! | `r4`..`r9` (`a0`..`a5`) | arguments; `a0` is the return value | caller |
//! | `r10`..`r19` (`t0`..`t9`) | temporaries | caller |
//! | `r20`..`r29` (`s0`..`s9`) | saved | callee |
//! | `r30`,`r31` (`at0`,`at1`) | emitter scratch (constant synthesis, spill reloads) | — |
//!
//! | fp registers | role | saved by |
//! |---|---|---|
//! | `f0`..`f3` (`fa0`..`fa3`) | arguments; `fa0` is the fp return value | caller |
//! | `f4`..`f9` (`ft0`..`ft5`) | temporaries | caller |
//! | `f10`..`f14` (`fs0`..`fs4`) | saved | callee |
//! | `f15` (`fat`) | emitter scratch | — |

use crate::isa::{FReg, Reg};

/// Hardwired zero.
pub const ZERO: Reg = Reg(0);
/// Return address (link) register.
pub const RA: Reg = Reg(1);
/// Stack pointer.
pub const SP: Reg = Reg(2);
/// Frame pointer.
pub const FP: Reg = Reg(3);
/// First argument / return value.
pub const A0: Reg = Reg(4);
/// Second argument.
pub const A1: Reg = Reg(5);
/// Third argument.
pub const A2: Reg = Reg(6);
/// Fourth argument.
pub const A3: Reg = Reg(7);
/// Fifth argument.
pub const A4: Reg = Reg(8);
/// Sixth argument.
pub const A5: Reg = Reg(9);
/// First caller-saved temporary (`r10`).
pub const T0: Reg = Reg(10);
/// First callee-saved register (`r20`).
pub const S0: Reg = Reg(20);
/// First emitter scratch register.
pub const AT0: Reg = Reg(30);
/// Second emitter scratch register.
pub const AT1: Reg = Reg(31);

/// Argument registers in order.
pub const ARG_REGS: [Reg; 6] = [A0, A1, A2, A3, A4, A5];
/// Caller-saved temporaries `t0`..`t9`.
pub const TEMP_REGS: [Reg; 10] = [
    Reg(10),
    Reg(11),
    Reg(12),
    Reg(13),
    Reg(14),
    Reg(15),
    Reg(16),
    Reg(17),
    Reg(18),
    Reg(19),
];
/// Callee-saved registers `s0`..`s9`.
pub const SAVED_REGS: [Reg; 10] = [
    Reg(20),
    Reg(21),
    Reg(22),
    Reg(23),
    Reg(24),
    Reg(25),
    Reg(26),
    Reg(27),
    Reg(28),
    Reg(29),
];

/// First fp argument / fp return value.
pub const FA0: FReg = FReg(0);
/// Second fp argument.
pub const FA1: FReg = FReg(1);
/// Third fp argument.
pub const FA2: FReg = FReg(2);
/// Fourth fp argument.
pub const FA3: FReg = FReg(3);
/// Emitter fp scratch register.
pub const FAT: FReg = FReg(15);

/// Floating point argument registers in order.
pub const FARG_REGS: [FReg; 4] = [FA0, FA1, FA2, FA3];
/// Caller-saved fp temporaries `f4`..`f9`.
pub const FTEMP_REGS: [FReg; 6] = [FReg(4), FReg(5), FReg(6), FReg(7), FReg(8), FReg(9)];
/// Callee-saved fp registers `f10`..`f14`.
pub const FSAVED_REGS: [FReg; 5] = [FReg(10), FReg(11), FReg(12), FReg(13), FReg(14)];

/// ABI name of an integer register, e.g. `abi_name(Reg(4)) == "a0"`.
pub fn abi_name(r: Reg) -> &'static str {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "fp", "a0", "a1", "a2", "a3", "a4", "a5", "t0", "t1", "t2", "t3", "t4",
        "t5", "t6", "t7", "t8", "t9", "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9",
        "at0", "at1",
    ];
    NAMES[r.0 as usize & 31]
}

/// ABI name of a floating point register.
pub fn fabi_name(f: FReg) -> &'static str {
    const NAMES: [&str; 16] = [
        "fa0", "fa1", "fa2", "fa3", "ft0", "ft1", "ft2", "ft3", "ft4", "ft5", "fs0", "fs1", "fs2",
        "fs3", "fs4", "fat",
    ];
    NAMES[f.0 as usize & 15]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_roles() {
        assert_eq!(abi_name(ZERO), "zero");
        assert_eq!(abi_name(A0), "a0");
        assert_eq!(abi_name(T0), "t0");
        assert_eq!(abi_name(S0), "s0");
        assert_eq!(abi_name(AT1), "at1");
        assert_eq!(fabi_name(FA0), "fa0");
        assert_eq!(fabi_name(FAT), "fat");
    }

    #[test]
    fn register_classes_are_disjoint() {
        let mut seen = std::collections::HashSet::new();
        for r in [ZERO, RA, SP, FP, AT0, AT1]
            .into_iter()
            .chain(ARG_REGS)
            .chain(TEMP_REGS)
            .chain(SAVED_REGS)
        {
            assert!(seen.insert(r.0), "register {r} assigned twice");
        }
        assert_eq!(seen.len(), 32);
    }
}
