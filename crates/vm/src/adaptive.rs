//! The adaptive execution engine: count-triggered per-function tiering.
//!
//! The fixed engines trade translation cost against dispatch speed: the
//! reference interpreter ([`ExecEngine::DecodePerStep`]) pays nothing
//! up front and the most per instruction, the predecoded+fused engine
//! pays one decoding pass per function, and the direct-threaded engine
//! pays the most translation (handler selection, block summaries) for
//! the fastest dispatch. Which trade wins depends on how often a
//! function runs — the paper's Figure 5 crossover, recreated at the
//! execution layer. [`ExecEngine::Adaptive`] makes the choice per
//! function at run time:
//!
//! ```text
//!            runs >= fuse_after        runs >= thread_after
//!   tier 0 ─────────────────▶ tier 1 ─────────────────▶ tier 2
//!   decode-per-step          predecoded+fused          threaded
//!      ▲                        │                         │
//!      └────────────────────────┴─────────────────────────┘
//!                 live-epoch bump (free / patch / eviction):
//!                 demote to tier 0, drop translations + counts
//! ```
//!
//! A "run" is one entry of control into the function's live range from
//! outside it (the invocation counter of a classic tiered JIT): calls,
//! returns into a caller, and cross-function jumps all count; internal
//! loops do not. The promotion clock additionally earns one run per
//! `BACKEDGES_PER_RUN_BITS`-weighted batch of backward transfers
//! observed while single-stepping at tier 0 (the backedge counter of a
//! classic tiered JIT), so a loop-heavy function promotes inside its
//! first run instead of paying decode price for every iteration until
//! its entry count catches up. Promotion is evaluated at entry (or at
//! a backedge clock tick), against the number of *completed* prior
//! entries, and is monotone per function — a function only moves up
//! tiers until an epoch bump resets it.
//!
//! # Equivalence contract
//!
//! The adaptive engine composes the existing dispatchers and falls back
//! to the same reference single-step path, so it inherits the
//! observational-equivalence contract: identical result values,
//! `cycles`, `insns`, exit status, and error at the same instruction
//! (including [`VmError::OutOfFuel`] under any fuel budget), before,
//! during, and after a promotion. `tests/exec_differential.rs` sweeps
//! fuel budgets across promotion boundaries to enforce this.
//!
//! # Invalidation
//!
//! Tier state lives in the `TransCache` next to the translations it
//! justified and is validated against [`CodeSpace::live_epoch`] on
//! every outer-loop iteration (hence after every host call). On any
//! epoch change — a function freed directly or by `tcc-cache` eviction,
//! or a live word patched — every function demotes to tier 0, run
//! counts reset, and stale translations are dropped; stale pcs then
//! fault [`VmError::StaleCode`] / [`VmError::BadPc`] from the exact
//! same reference path as every other engine.
//!
//! # Off-thread translation
//!
//! With `ExecEngine::Adaptive { background: true, .. }` a promotion no
//! longer builds its translation inline — the promoting run would stall
//! for exactly the latency the tiering exists to hide. Instead the
//! engine snapshots the function's sealed words and enqueues a
//! translation request (start index, target tier, the live epoch and
//! cache generation at enqueue) to a background worker thread spawned
//! lazily and owned by the translation cache. The run loop keeps executing
//! at the function's current tier; finished translations are drained at
//! function-entry points and swapped in — or **discarded** when
//! [`CodeSpace::live_epoch`] moved since enqueue (the snapshot no
//! longer describes live code) or the cache generation changed (the
//! tier state the request belonged to was rebuilt). Discarding rather
//! than installing keeps free/patch/eviction semantics and `StaleCode`
//! faulting bit-identical to the synchronous engines; the differential
//! harness sweeps the worker-backed variants too.
//!
//! [`ExecEngine::DecodePerStep`]: crate::predecode::ExecEngine::DecodePerStep
//! [`ExecEngine::Adaptive`]: crate::predecode::ExecEngine::Adaptive
//! [`CodeSpace::live_epoch`]: crate::code::CodeSpace::live_epoch

use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::code::CODE_BASE;
use crate::cost::CostModel;
use crate::error::VmError;
use crate::host::HostCall;
use crate::interp::{ExitStatus, Step, Vm, RETURN_SENTINEL};
use crate::predecode::{DecodedFn, ExecStats};
use crate::threaded::{ThreadedFn, HANDLER_TABLE_SIZE};

/// Default promotion threshold to tier 1 (predecoded+fused): completed
/// runs after which one decoding pass has paid for itself. Calibrated
/// by the `suite adaptive` reuse sweep.
pub const DEFAULT_FUSE_AFTER: u32 = 2;

/// Default promotion threshold to tier 2 (direct-threaded): completed
/// runs after which the heavier handler-table translation has paid for
/// itself. Calibrated by the `suite adaptive` reuse sweep.
pub const DEFAULT_THREAD_AFTER: u32 = 8;

/// Execution tier of one function under the adaptive engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Decode-per-step: no translation cost.
    Decode = 0,
    /// Predecoded buffer with superinstruction fusion.
    Fused = 1,
    /// Direct-threaded dispatch with basic-block fuel batching.
    Threaded = 2,
}

/// Sentinel in [`TransCache::tier_idx`]: no tier record covers this
/// word yet.
///
/// [`TransCache::tier_idx`]: crate::predecode::TransCache::tier_idx
pub(crate) const NO_TIER: u32 = u32::MAX;

/// Backward branches observed while single-stepping that count as one
/// extra completed run (`64`): a loop-heavy function proves its heat
/// in loop iterations long before its entry count does, and every
/// iteration spent at tier 0 costs full decode price. The weight is a
/// power of two so the hot path tests promotion with a mask, and large
/// enough that short loops (the unit-test kernels) never promote off
/// their entry schedule.
pub(crate) const BACKEDGES_PER_RUN_BITS: u32 = 6;

/// Per-function adaptive state, indexed from `tier_idx` by any word of
/// the function's live range.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FnTier {
    /// Start word of the function's live range.
    pub(crate) start: usize,
    /// Entries of control into this function's range — the promotion
    /// clock. Monotone until an epoch bump drops the whole table.
    pub(crate) runs: u64,
    /// Backward branches taken inside the range while at tier 0 — the
    /// hotspot clock, weighted down by [`BACKEDGES_PER_RUN_BITS`].
    pub(crate) backedges: u64,
    /// Current tier; only ever moves up between epoch bumps.
    pub(crate) tier: Tier,
    /// Words in the function, for the translation-cost-saved estimate.
    pub(crate) words: u32,
    /// A tier-1 (decoded) translation request is in flight on the
    /// background worker; suppresses duplicate enqueues.
    pub(crate) pending_fused: bool,
    /// A tier-2 (threaded) translation request is in flight.
    pub(crate) pending_threaded: bool,
}

impl FnTier {
    /// The promotion clock: completed entries plus loop iterations
    /// observed at tier 0, weighted so `2^BACKEDGES_PER_RUN_BITS`
    /// backedges count as one run.
    #[inline]
    fn effective_runs(&self) -> u64 {
        self.runs + (self.backedges >> BACKEDGES_PER_RUN_BITS)
    }
}

/// Counters for the adaptive engine: where runs executed, how functions
/// moved between tiers, and what translation cost was spent vs avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Function entries executed, across all tiers. Always equals
    /// `runs_tier0 + runs_tier1 + runs_tier2` (tested invariant).
    pub total_runs: u64,
    /// Function entries executed on decode-per-step (tier 0).
    pub runs_tier0: u64,
    /// Function entries executed on the predecoded+fused engine (tier 1).
    pub runs_tier1: u64,
    /// Function entries executed on the direct-threaded engine (tier 2).
    pub runs_tier2: u64,
    /// Tier levels gained, cumulative (a 0→2 jump counts 2). Always
    /// `>= demotions` — a level can only be lost after it was gained.
    pub promotions: u64,
    /// Tier levels lost to epoch-bump demotions, cumulative.
    pub demotions: u64,
    /// Wall-clock nanoseconds spent translating promoted functions
    /// (decoded and threaded buffers), under this engine only.
    pub translation_ns: u64,
    /// Estimated nanoseconds of translation *avoided* so far: words of
    /// run-but-never-promoted functions, priced at this session's
    /// observed translation cost per word. `0` until something has been
    /// translated (no price signal yet).
    pub translation_ns_saved: u64,
    /// Code words translated under this engine (the price signal for
    /// [`AdaptiveStats::translation_ns_saved`]).
    pub translated_words: u64,
    /// Translations built on the background worker and swapped in
    /// (`background: true` only; inline builds are not counted here).
    pub async_translations: u64,
    /// Background translations discarded on receipt because the live
    /// epoch moved between enqueue and completion — the demotion-safe
    /// path of the async pipeline.
    pub discarded_stale: u64,
    /// Total enqueue→swap-in wall-clock nanoseconds across
    /// [`AdaptiveStats::async_translations`] (queue wait + build +
    /// drain delay; the off-critical-path latency budget).
    pub swap_latency_ns: u64,
}

/// A translation request handed to the background worker: everything a
/// build needs, snapshotted at enqueue time so the worker never touches
/// VM state. Host-independent — only the response is typed over `H`.
pub(crate) struct TransRequest {
    /// Start word index of the function's live range (positions the
    /// buffer's base address).
    start: usize,
    /// Owned snapshot of the range's sealed words.
    words: Vec<u32>,
    /// The cost model in force at enqueue.
    cost: CostModel,
    /// Target tier ([`Tier::Fused`] or [`Tier::Threaded`]).
    tier: Tier,
    /// [`crate::code::CodeSpace::live_epoch`] at enqueue; the response
    /// is discarded if the epoch moved before it was received.
    epoch: u64,
    /// Cache generation at enqueue; the response is dropped if the tier
    /// state it belongs to was rebuilt (engine/cost-model change).
    generation: u64,
    /// Enqueue timestamp, for [`AdaptiveStats::swap_latency_ns`].
    enqueued: Instant,
}

/// A finished background translation, stamped with the validity context
/// it was built under.
pub(crate) struct TransDone<H> {
    start: usize,
    end: usize,
    tier: Tier,
    epoch: u64,
    generation: u64,
    /// Wall-clock build time on the worker (goes into
    /// [`AdaptiveStats::translation_ns`] when installed).
    build_ns: u64,
    /// Pairs fused during a tier-1 build (folded into `ExecStats`).
    fused_pairs: u64,
    enqueued: Instant,
    payload: TransPayload<H>,
}

/// The built buffer itself.
enum TransPayload<H> {
    Fused(Arc<DecodedFn>),
    Threaded(Arc<ThreadedFn<H>>),
}

/// The background translation worker: request/response channels plus
/// the thread handle. Owned by the translation cache; dropping it
/// closes the request channel, which shuts the thread down (joined so a
/// VM drop never leaks a worker).
pub(crate) struct TransWorker<H> {
    tx: Option<mpsc::Sender<TransRequest>>,
    rx: mpsc::Receiver<TransDone<H>>,
    handle: Option<thread::JoinHandle<()>>,
}

impl<H: HostCall> TransWorker<H> {
    /// Spawns the worker thread. Called lazily on the first background
    /// promotion, so synchronous sessions never start a thread.
    pub(crate) fn spawn() -> TransWorker<H> {
        let (req_tx, req_rx) = mpsc::channel::<TransRequest>();
        let (done_tx, done_rx) = mpsc::channel::<TransDone<H>>();
        let handle = thread::Builder::new()
            .name("tcc-translate".into())
            .spawn(move || worker_loop::<H>(&req_rx, &done_tx))
            .expect("spawn background translation worker");
        TransWorker {
            tx: Some(req_tx),
            rx: done_rx,
            handle: Some(handle),
        }
    }
}

impl<H> Drop for TransWorker<H> {
    fn drop(&mut self) {
        // Closing the request channel ends `worker_loop`'s recv loop.
        drop(self.tx.take());
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Builds the translation a request asks for, over its word snapshot,
/// timing the build. The single build path shared by the per-VM worker
/// and the multi-tenant [`TransHub`]. Returns `None` for tier 0 (no
/// translation exists; never legitimately enqueued).
fn build_translation<H: HostCall>(req: TransRequest) -> Option<TransDone<H>> {
    let end = req.start + req.words.len();
    let t0 = Instant::now();
    let (payload, fused_pairs) = match req.tier {
        Tier::Fused => {
            // The scratch stats capture `fused_pairs` for the build;
            // they are folded into the VM's counters at install time.
            let mut scratch = ExecStats::default();
            let tr =
                crate::predecode::translate(&req.words, req.start, &req.cost, true, &mut scratch);
            (TransPayload::Fused(Arc::new(tr)), scratch.fused_pairs)
        }
        Tier::Threaded => {
            let tr = crate::threaded::translate::<H>(&req.words, req.start, &req.cost);
            (TransPayload::Threaded(Arc::new(tr)), 0)
        }
        Tier::Decode => return None,
    };
    Some(TransDone {
        start: req.start,
        end,
        tier: req.tier,
        epoch: req.epoch,
        generation: req.generation,
        build_ns: t0.elapsed().as_nanos() as u64,
        fused_pairs,
        enqueued: req.enqueued,
        payload,
    })
}

/// The worker thread body: translate each request over its word
/// snapshot (timing the build) and send the result back. Exits when
/// either channel closes.
fn worker_loop<H: HostCall>(rx: &mpsc::Receiver<TransRequest>, tx: &mpsc::Sender<TransDone<H>>) {
    while let Ok(req) = rx.recv() {
        let Some(done) = build_translation::<H>(req) else {
            continue;
        };
        if tx.send(done).is_err() {
            return;
        }
    }
}

/// A shared background translation service: **one** `tcc-translate`
/// thread serving any number of VMs. Each request carries its own reply
/// channel, so completions route back to the requesting VM and go
/// through that VM's usual epoch/generation install checks — sharing
/// the thread changes where builds run, not what gets installed.
///
/// Cloning shares the service (`Arc` inside); the thread shuts down
/// when the last clone drops (request channel closes, thread joined).
/// A pool of worker sessions clones one hub so a single spare hardware
/// thread absorbs every session's translation load, instead of N
/// per-VM workers time-sharing it.
pub struct TransHub<H> {
    inner: Arc<HubInner<H>>,
}

impl<H> Clone for TransHub<H> {
    fn clone(&self) -> Self {
        TransHub {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<H> std::fmt::Debug for TransHub<H> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TransHub").finish_non_exhaustive()
    }
}

struct HubInner<H> {
    tx: Mutex<Option<mpsc::Sender<HubJob<H>>>>,
    handle: Mutex<Option<thread::JoinHandle<()>>>,
}

/// One queued hub build: the request plus the requester's completion
/// channel.
struct HubJob<H> {
    req: TransRequest,
    reply: mpsc::Sender<TransDone<H>>,
}

impl<H: HostCall> TransHub<H> {
    /// Spawns the shared translation thread.
    pub fn spawn() -> TransHub<H> {
        let (tx, rx) = mpsc::channel::<HubJob<H>>();
        let handle = thread::Builder::new()
            .name("tcc-translate".into())
            .spawn(move || hub_loop::<H>(&rx))
            .expect("spawn shared translation hub");
        TransHub {
            inner: Arc::new(HubInner {
                tx: Mutex::new(Some(tx)),
                handle: Mutex::new(Some(handle)),
            }),
        }
    }

    /// Queues a build; the completion lands on `reply`. `false` when
    /// the hub thread is gone (the caller falls back or retries later;
    /// execution is correct at the current tier either way).
    pub(crate) fn submit(&self, req: TransRequest, reply: mpsc::Sender<TransDone<H>>) -> bool {
        let guard = self.inner.tx.lock().unwrap_or_else(|e| e.into_inner());
        match guard.as_ref() {
            Some(tx) => tx.send(HubJob { req, reply }).is_ok(),
            None => false,
        }
    }
}

impl<H> Drop for HubInner<H> {
    fn drop(&mut self) {
        // Closing the request channel ends `hub_loop`'s recv loop.
        drop(self.tx.get_mut().unwrap_or_else(|e| e.into_inner()).take());
        if let Some(h) = self
            .handle
            .get_mut()
            .unwrap_or_else(|e| e.into_inner())
            .take()
        {
            let _ = h.join();
        }
    }
}

/// The hub thread body: build each job and reply to its requester. A
/// requester that died just drops its receiver — the send fails and the
/// hub keeps serving everyone else.
fn hub_loop<H: HostCall>(rx: &mpsc::Receiver<HubJob<H>>) {
    while let Ok(job) = rx.recv() {
        if let Some(done) = build_translation::<H>(job.req) {
            let _ = job.reply.send(done);
        }
    }
}

/// A VM's subscription to a shared [`TransHub`]: the hub handle plus
/// this VM's private completion channel (the `done_tx` clone travels
/// with each request).
pub(crate) struct HubClient<H> {
    hub: TransHub<H>,
    done_tx: mpsc::Sender<TransDone<H>>,
    done_rx: mpsc::Receiver<TransDone<H>>,
}

/// Prices `cold_words` of never-translated code at the session's
/// observed translation rate, entirely in integer arithmetic:
/// `cold_words * translation_ns / translated_words`, computed in
/// `u128` so the product cannot overflow and no f64 round-trip can
/// corrupt large counters. With no price signal yet — nothing
/// translated, or a cold sample whose measured duration was zero
/// (`per_word == 0` on a coarse clock) — the estimate is `0`.
pub(crate) fn saved_estimate(cold_words: u64, translation_ns: u64, translated_words: u64) -> u64 {
    if translated_words == 0 || translation_ns == 0 {
        return 0;
    }
    let scaled = u128::from(cold_words) * u128::from(translation_ns) / u128::from(translated_words);
    u64::try_from(scaled).unwrap_or(u64::MAX)
}

/// The translation handle an [`Active`] function dispatches through.
/// `None` covers tier 0 and tiers whose translation was refused — both
/// single-step on the reference path.
enum ActiveTr<H> {
    None,
    Fused(Arc<DecodedFn>),
    Threaded(Arc<ThreadedFn<H>>),
}

/// A function the adaptive run loop is attributed to (or just left):
/// absolute bounds, its tier record, and the translation handle for its
/// tier, all memoized in the loop so steady-state dispatch touches no
/// cache at all. The fixed threaded engine pays one `tmap` probe and an
/// `Arc` clone per call/return transition; keeping the two sides of the
/// transition warm here is what lets adaptive match it (`suite
/// adaptive` gates the gap).
struct Active<H> {
    /// Absolute address bounds of the function's live range.
    lo: u64,
    hi: u64,
    /// Index into `TransCache::tier_fns`.
    fi: u32,
    /// Tier [`Active::tr`] was fetched for; refreshed on promotion.
    tier: Tier,
    tr: ActiveTr<H>,
    /// Backward transfers observed while running below the granted
    /// tier with a translation in flight (background mode only);
    /// throttles the mid-run worker poll to the hotspot clock's tick.
    poll_clock: u32,
}

impl<H> Active<H> {
    /// Whether `pc` is a word inside this function's live range.
    #[inline]
    fn contains(&self, pc: u64) -> bool {
        pc >= self.lo && pc < self.hi && pc.is_multiple_of(4)
    }
}

/// Whether a memoized translation handle is the one `tier` dispatches
/// through. In background mode a function can run *below* its granted
/// tier while its translation is in flight; a mismatch at function
/// entry re-probes the cache so a finished swap is picked up.
#[inline]
fn tr_matches<H>(tr: &ActiveTr<H>, tier: Tier) -> bool {
    matches!(
        (tr, tier),
        (ActiveTr::None, Tier::Decode)
            | (ActiveTr::Fused(_), Tier::Fused)
            | (ActiveTr::Threaded(_), Tier::Threaded)
    )
}

impl<H: HostCall> Vm<H> {
    /// The adaptive engine's run loop. Structure matches
    /// `run_predecoded` / `run_threaded` — translated dispatch where the
    /// function's tier has one, reference-engine single steps otherwise
    /// — with tier selection at each function entry.
    pub(crate) fn run_adaptive(
        &mut self,
        mut pc: u64,
        fuse_after: u32,
        thread_after: u32,
        background: bool,
    ) -> Result<ExitStatus, VmError> {
        // The attributed function and the one control most recently
        // left. Entries are counted only on range transitions, and the
        // common transition shape — a call/return ping-pong between a
        // caller and one callee — swaps the memoized pair without any
        // range resolution or translation lookup.
        let mut cur: Option<Active<H>> = None;
        let mut prev: Option<Active<H>> = None;
        loop {
            if pc == RETURN_SENTINEL {
                return Ok(ExitStatus::Returned);
            }
            let epoch = self.state.code.live_epoch();
            if epoch != self.trans.epoch {
                self.demote_all(epoch);
                cur = None;
                prev = None;
            }
            let in_cur = match cur {
                Some(ref c) => c.contains(pc),
                None => false,
            };
            if !in_cur {
                // Function entry: the swap point of the async pipeline.
                // Finished background translations are installed here,
                // before tier selection, so this entry can already
                // dispatch through them.
                if background && self.trans.pending > 0 {
                    self.poll_background();
                }
                let back = match prev {
                    Some(ref p) => p.contains(pc),
                    None => false,
                };
                if back {
                    std::mem::swap(&mut cur, &mut prev);
                    let c = cur.as_mut().expect("swapped from a hit");
                    let tier = self.count_entry(c.fi, fuse_after, thread_after);
                    if tier != c.tier || (background && !tr_matches(&c.tr, tier)) {
                        c.tier = tier;
                        c.tr = self.fetch_translation(pc, c.fi, tier, background);
                    }
                } else {
                    prev = std::mem::replace(
                        &mut cur,
                        self.enter_function(pc, fuse_after, thread_after, background),
                    );
                }
            }
            // `cur` is a loop local, so dispatching through its memoized
            // translation borrows nothing from `self`.
            let step = if let Some(Active {
                tr: ActiveTr::Threaded(ref tr),
                ..
            }) = cur
            {
                self.dispatch_threaded(tr, pc)?
            } else if let Some(Active {
                tr: ActiveTr::Fused(ref tr),
                ..
            }) = cur
            {
                self.dispatch(tr, pc)?
            } else {
                let step = self.step_adaptive_slow(pc)?;
                // Hotspot clock: a backward transfer inside a tier-0
                // function is a loop iteration paid at full decode
                // price; enough of them promote the function mid-run,
                // without waiting for its entry count to catch up.
                if let (Some(a), &Step::At(next)) = (cur.as_mut(), &step) {
                    if next <= pc && a.contains(next) {
                        if a.tier == Tier::Decode {
                            self.note_backedge(a, next, fuse_after, thread_after, background);
                        } else if background && self.trans.pending > 0 {
                            // Granted a tier whose translation is still
                            // in flight: poll for it mid-loop so the
                            // swap lands inside this run.
                            self.poll_midrun(a, next);
                        }
                    }
                }
                step
            };
            match step {
                Step::At(next) => pc = next,
                Step::Done(status) => return Ok(status),
            }
        }
    }

    /// One reference-engine step with slow-path accounting (identical
    /// to the decode-per-step engine's loop body).
    #[inline]
    fn step_adaptive_slow(&mut self, pc: u64) -> Result<Step, VmError> {
        let step = self.step_slow(pc)?;
        self.trans.stats.slow_insns += 1;
        Ok(step)
    }

    /// Records one entry of control into the live function containing
    /// `pc`, promoting it first if its completed-run count has crossed a
    /// threshold. Returns the memoized function state, or `None` when
    /// `pc` is not inside live code (the slow path then raises the exact
    /// reference fault).
    fn enter_function(
        &mut self,
        pc: u64,
        fuse_after: u32,
        thread_after: u32,
        background: bool,
    ) -> Option<Active<H>> {
        if pc < CODE_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / 4) as usize;
        let fi = match self.trans.tier_idx.get(idx).copied() {
            Some(fi) if fi != NO_TIER => fi,
            _ => {
                // First entry since the last epoch bump: resolve the
                // live range once and mirror it into the dense index so
                // every later entry is a single array load.
                let (start, end) = self.state.code.live_range_containing(idx)?;
                let fi = u32::try_from(self.trans.tier_fns.len())
                    .expect("fewer than 2^32 live functions per epoch");
                self.trans.tier_fns.push(FnTier {
                    start,
                    runs: 0,
                    backedges: 0,
                    tier: Tier::Decode,
                    words: (end - start) as u32,
                    pending_fused: false,
                    pending_threaded: false,
                });
                if self.trans.tier_idx.len() < end {
                    self.trans.tier_idx.resize(end, NO_TIER);
                }
                for slot in &mut self.trans.tier_idx[start..end] {
                    *slot = fi;
                }
                fi
            }
        };
        let tier = self.count_entry(fi, fuse_after, thread_after);
        let f = &self.trans.tier_fns[fi as usize];
        let lo = CODE_BASE + (f.start as u64) * 4;
        let hi = lo + u64::from(f.words) * 4;
        let tr = self.fetch_translation(pc, fi, tier, background);
        Some(Active {
            lo,
            hi,
            fi,
            tier,
            tr,
            poll_clock: 0,
        })
    }

    /// Mid-run swap point of the async pipeline: the function was
    /// granted a tier whose translation is still being built, so it is
    /// single-stepping at reference speed. Backward transfers poll the
    /// worker on the same 64-iteration clock as the hotspot check and
    /// swap a finished build in mid-loop — the synchronous engine
    /// promotes mid-run at exactly this point, and without a matching
    /// swap point the pipeline would forfeit the whole remaining run
    /// to the cold tier, *growing* the cold-run tail it exists to cut.
    #[inline]
    fn poll_midrun(&mut self, a: &mut Active<H>, pc: u64) {
        a.poll_clock = a.poll_clock.wrapping_add(1);
        if a.poll_clock & ((1 << BACKEDGES_PER_RUN_BITS) - 1) != 0 {
            return;
        }
        self.poll_background();
        if !tr_matches(&a.tr, a.tier) {
            a.tr = self.fetch_translation(pc, a.fi, a.tier, true);
        }
    }

    /// Counts one entry of control into tier record `fi`, promoting the
    /// function first if its completed-run count has crossed a
    /// threshold. Returns the tier this entry executes at. This is the
    /// whole per-transition cost once a function is memoized.
    #[inline]
    fn count_entry(&mut self, fi: u32, fuse_after: u32, thread_after: u32) -> Tier {
        let entry = &mut self.trans.tier_fns[fi as usize];
        let clock = entry.effective_runs();
        let target = if clock >= u64::from(thread_after) {
            Tier::Threaded
        } else if clock >= u64::from(fuse_after) {
            Tier::Fused
        } else {
            Tier::Decode
        };
        let promoted = if target > entry.tier {
            let levels = target as u64 - entry.tier as u64;
            entry.tier = target;
            levels
        } else {
            0
        };
        entry.runs += 1;
        let tier = entry.tier;
        let astats = &mut self.trans.astats;
        astats.promotions += promoted;
        astats.total_runs += 1;
        match tier {
            Tier::Decode => astats.runs_tier0 += 1,
            Tier::Fused => astats.runs_tier1 += 1,
            Tier::Threaded => astats.runs_tier2 += 1,
        }
        tier
    }

    /// Counts one backward transfer inside the tier-0 function `a` and
    /// promotes it in place once enough loop iterations have accrued
    /// (re-evaluated only when the weighted clock ticks, so the common
    /// case is one increment and one mask test).
    #[inline]
    fn note_backedge(
        &mut self,
        a: &mut Active<H>,
        pc: u64,
        fuse_after: u32,
        thread_after: u32,
        background: bool,
    ) {
        let entry = &mut self.trans.tier_fns[a.fi as usize];
        entry.backedges += 1;
        if entry.backedges & ((1 << BACKEDGES_PER_RUN_BITS) - 1) != 0 {
            return;
        }
        let clock = entry.effective_runs();
        let target = if clock >= u64::from(thread_after) {
            Tier::Threaded
        } else if clock >= u64::from(fuse_after) {
            Tier::Fused
        } else {
            return;
        };
        if target > entry.tier {
            let levels = target as u64 - entry.tier as u64;
            entry.tier = target;
            self.trans.astats.promotions += levels;
            a.tier = target;
            a.tr = self.fetch_translation(pc, a.fi, target, background);
        }
    }

    /// The translation handle for `tier` at `pc`. Synchronous mode
    /// builds (and times) it inline on first use. Background mode never
    /// builds on this thread: a cached buffer is returned directly, and
    /// a miss enqueues a request to the worker and falls back to the
    /// best already-cached lower tier, so the promoting run keeps
    /// moving at its current speed.
    fn fetch_translation(&mut self, pc: u64, fi: u32, tier: Tier, background: bool) -> ActiveTr<H> {
        if background {
            return self.fetch_translation_bg(pc, fi, tier);
        }
        match tier {
            Tier::Threaded => match self.threaded_at_counted(pc) {
                Some(tr) => ActiveTr::Threaded(tr),
                None => ActiveTr::None,
            },
            Tier::Fused => match self.translation_at_counted(pc) {
                Some(tr) => ActiveTr::Fused(tr),
                None => ActiveTr::None,
            },
            Tier::Decode => ActiveTr::None,
        }
    }

    /// Background-mode fetch: cache hits resolve immediately, misses
    /// enqueue and degrade to the next tier down (a threaded miss can
    /// still dispatch through an installed decoded buffer).
    fn fetch_translation_bg(&mut self, pc: u64, fi: u32, tier: Tier) -> ActiveTr<H> {
        let idx = ((pc - CODE_BASE) / 4) as usize;
        match tier {
            Tier::Threaded => {
                if self.trans.threaded_cached(idx) {
                    return match self.threaded_at(pc) {
                        Some(tr) => ActiveTr::Threaded(tr),
                        None => ActiveTr::None,
                    };
                }
                self.enqueue_translation(fi, Tier::Threaded);
                if self.trans.decoded_cached(idx) {
                    return match self.translation_at(pc, true) {
                        Some(tr) => ActiveTr::Fused(tr),
                        None => ActiveTr::None,
                    };
                }
                ActiveTr::None
            }
            Tier::Fused => {
                if self.trans.decoded_cached(idx) {
                    return match self.translation_at(pc, true) {
                        Some(tr) => ActiveTr::Fused(tr),
                        None => ActiveTr::None,
                    };
                }
                self.enqueue_translation(fi, Tier::Fused);
                ActiveTr::None
            }
            Tier::Decode => ActiveTr::None,
        }
    }

    /// Enqueues a translation request for tier record `fi` to the
    /// background worker (spawning it on first use), snapshotting the
    /// function's sealed words plus the epoch/generation the result
    /// must still match to be installed. A request already in flight
    /// for the same function and tier is not duplicated.
    fn enqueue_translation(&mut self, fi: u32, tier: Tier) {
        let (start, end) = {
            let entry = &mut self.trans.tier_fns[fi as usize];
            let pending = match tier {
                Tier::Fused => &mut entry.pending_fused,
                Tier::Threaded => &mut entry.pending_threaded,
                Tier::Decode => return,
            };
            if *pending {
                return;
            }
            *pending = true;
            (entry.start, entry.start + entry.words as usize)
        };
        let req = TransRequest {
            start,
            words: self.state.code.word_slice(start, end).to_vec(),
            cost: self.cost.clone(),
            tier,
            epoch: self.trans.epoch,
            generation: self.trans.generation,
            enqueued: Instant::now(),
        };
        // A shared hub subscription routes builds to the multi-tenant
        // thread; otherwise a per-VM worker is spawned lazily.
        let sent = if let Some(client) = self.trans.hub.as_ref() {
            client.hub.submit(req, client.done_tx.clone())
        } else {
            let worker = self.trans.worker.get_or_insert_with(TransWorker::spawn);
            match worker.tx.as_ref() {
                Some(tx) => tx.send(req).is_ok(),
                None => false,
            }
        };
        if sent {
            self.trans.pending += 1;
        } else {
            // Worker unavailable (died mid-session): clear the flag so
            // a later promotion can retry; execution stays correct at
            // the current tier either way.
            let entry = &mut self.trans.tier_fns[fi as usize];
            match tier {
                Tier::Fused => entry.pending_fused = false,
                Tier::Threaded => entry.pending_threaded = false,
                Tier::Decode => {}
            }
        }
    }

    /// Subscribes this VM to a shared [`TransHub`]: every later
    /// background promotion is built on the hub's thread instead of a
    /// per-VM worker, and completions come back on a private channel
    /// created here. Install semantics (epoch/generation checks,
    /// discard-on-stale) are unchanged.
    pub fn set_translation_hub(&mut self, hub: TransHub<H>) {
        let (done_tx, done_rx) = mpsc::channel();
        self.trans.hub = Some(HubClient {
            hub,
            done_tx,
            done_rx,
        });
    }

    /// Drains every already-finished background translation without
    /// blocking, installing or discarding each.
    fn poll_background(&mut self) {
        while self.trans.pending > 0 {
            let done = if let Some(client) = self.trans.hub.as_ref() {
                match client.done_rx.try_recv() {
                    Ok(done) => done,
                    Err(_) => break,
                }
            } else {
                match self.trans.worker.as_ref() {
                    Some(w) => match w.rx.try_recv() {
                        Ok(done) => done,
                        Err(_) => break,
                    },
                    None => break,
                }
            };
            self.trans.pending -= 1;
            self.install_translation(done);
        }
    }

    /// Blocks until every in-flight background translation has been
    /// received (each is then installed or discarded by the usual
    /// epoch/generation checks). Test and benchmark hook: makes the
    /// asynchronous pipeline deterministic at a chosen point without
    /// changing its semantics.
    pub fn drain_background_translations(&mut self) {
        while self.trans.pending > 0 {
            let done = if let Some(client) = self.trans.hub.as_ref() {
                // This VM holds its own `done_tx`, so the channel never
                // reports disconnected — a timeout bounds the wait if
                // the hub thread is gone mid-build.
                match client.done_rx.recv_timeout(Duration::from_secs(1)) {
                    Ok(done) => done,
                    Err(_) => break,
                }
            } else {
                match self.trans.worker.as_ref() {
                    Some(w) => match w.rx.recv() {
                        Ok(done) => done,
                        Err(_) => break,
                    },
                    None => break,
                }
            };
            self.trans.pending -= 1;
            self.install_translation(done);
        }
    }

    /// Swap-or-discard: the receive side of the async pipeline. A
    /// result built against an older live epoch describes code that has
    /// since been freed or patched and is discarded (the demotion-safe
    /// path); one from an older cache generation belongs to tier state
    /// that no longer exists and is dropped silently. Everything else
    /// is installed exactly as an inline build would have been.
    fn install_translation(&mut self, done: TransDone<H>) {
        if done.epoch != self.state.code.live_epoch() {
            self.trans.astats.discarded_stale += 1;
            return;
        }
        if done.generation != self.trans.generation {
            return;
        }
        // Same generation ⇒ the tier record that requested this is
        // still alive; clear its in-flight flag.
        if let Some(&fi) = self.trans.tier_idx.get(done.start) {
            if fi != NO_TIER {
                let entry = &mut self.trans.tier_fns[fi as usize];
                match done.tier {
                    Tier::Fused => entry.pending_fused = false,
                    Tier::Threaded => entry.pending_threaded = false,
                    Tier::Decode => {}
                }
            }
        }
        let need = self.state.code.next_index();
        match done.payload {
            TransPayload::Fused(tr) => {
                if self.trans.map.len() < need {
                    self.trans.map.resize(need, None);
                }
                for slot in self.trans.map[done.start..done.end].iter_mut() {
                    *slot = Some(Arc::clone(&tr));
                }
                self.trans.stats.fused_pairs += done.fused_pairs;
            }
            TransPayload::Threaded(tr) => {
                if self.trans.tmap.len() < need {
                    self.trans.tmap.resize(need, None);
                }
                for slot in self.trans.tmap[done.start..done.end].iter_mut() {
                    *slot = Some(Arc::clone(&tr));
                }
                self.trans.stats.handlers = HANDLER_TABLE_SIZE;
                self.trans.stats.superinstructions += tr.superinstructions;
                for (shape, count) in &tr.shapes {
                    *self.trans.shapes.entry(shape.clone()).or_insert(0) += count;
                }
            }
        }
        self.trans.stats.translations += 1;
        self.trans.stats.translated_words += (done.end - done.start) as u64;
        let astats = &mut self.trans.astats;
        astats.translation_ns += done.build_ns;
        astats.translated_words += (done.end - done.start) as u64;
        astats.async_translations += 1;
        astats.swap_latency_ns += done.enqueued.elapsed().as_nanos() as u64;
    }

    /// Epoch bump observed: count the tier levels lost, drop every
    /// translation and all tier state, and adopt the new epoch. The
    /// next entry of any function starts over at tier 0 with a zero run
    /// count.
    fn demote_all(&mut self, epoch: u64) {
        let lost: u64 = self.trans.tier_fns.iter().map(|t| t.tier as u64).sum();
        self.trans.astats.demotions += lost;
        self.trans.clear();
        self.trans.epoch = epoch;
        self.trans.stats.invalidations += 1;
    }

    /// `translation_at`, with the build (cache-miss) path timed into
    /// [`AdaptiveStats::translation_ns`].
    fn translation_at_counted(
        &mut self,
        pc: u64,
    ) -> Option<std::sync::Arc<crate::predecode::DecodedFn>> {
        let idx = ((pc - CODE_BASE) / 4) as usize;
        if self.trans.decoded_cached(idx) {
            return self.translation_at(pc, true);
        }
        let words_before = self.trans.stats.translated_words;
        let t0 = Instant::now();
        let tr = self.translation_at(pc, true);
        let built = self.trans.stats.translated_words - words_before;
        if built > 0 {
            self.trans.astats.translation_ns += t0.elapsed().as_nanos() as u64;
            self.trans.astats.translated_words += built;
        }
        tr
    }

    /// `threaded_at`, with the build (cache-miss) path timed into
    /// [`AdaptiveStats::translation_ns`].
    fn threaded_at_counted(
        &mut self,
        pc: u64,
    ) -> Option<std::sync::Arc<crate::threaded::ThreadedFn<H>>> {
        let idx = ((pc - CODE_BASE) / 4) as usize;
        if self.trans.threaded_cached(idx) {
            return self.threaded_at(pc);
        }
        let words_before = self.trans.stats.translated_words;
        let t0 = Instant::now();
        let tr = self.threaded_at(pc);
        let built = self.trans.stats.translated_words - words_before;
        if built > 0 {
            self.trans.astats.translation_ns += t0.elapsed().as_nanos() as u64;
            self.trans.astats.translated_words += built;
        }
        tr
    }

    /// Adaptive-engine counters, with the translation-cost-saved
    /// estimate priced at this session's observed ns/word.
    pub fn adaptive_stats(&self) -> AdaptiveStats {
        let mut s = self.trans.astats;
        let cold_words: u64 = self
            .trans
            .tier_fns
            .iter()
            .filter(|t| t.tier == Tier::Decode && t.runs > 0)
            .map(|t| u64::from(t.words))
            .sum();
        s.translation_ns_saved = saved_estimate(cold_words, s.translation_ns, s.translated_words);
        s
    }

    /// The adaptive tier and run count of the live function containing
    /// `addr`: `None` when `addr` is not inside live code or the
    /// function has not been entered since the last epoch bump.
    /// Diagnostic surface for tests and tooling.
    pub fn adaptive_tier(&self, addr: u64) -> Option<(Tier, u64)> {
        if addr < CODE_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        // A pending (not-yet-observed) epoch bump means every record is
        // due for demotion: report untracked rather than stale state.
        if self.state.code.live_epoch() != self.trans.epoch {
            return None;
        }
        let idx = ((addr - CODE_BASE) / 4) as usize;
        let fi = self.trans.tier_idx.get(idx).copied()?;
        if fi == NO_TIER {
            return None;
        }
        let t = &self.trans.tier_fns[fi as usize];
        Some((t.tier, t.runs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::CodeSpace;
    use crate::isa::{Insn, Op};
    use crate::predecode::ExecEngine;
    use crate::regs::{A0, AT0, ZERO};

    /// sum(1..=n) by counted loop (same shape as predecode's tests).
    fn loop_code() -> (CodeSpace, u64, crate::code::FuncHandle) {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("sum");
        cs.push(Insn::i(Op::Addiw, AT0, ZERO, 0));
        cs.push(Insn::i(Op::Beq, A0, ZERO, 3));
        cs.push(Insn::r(Op::Addw, AT0, AT0, A0));
        cs.push(Insn::i(Op::Addiw, A0, A0, -1));
        cs.push(Insn::j(Op::J, -4));
        cs.push(Insn::r(Op::Addw, A0, AT0, ZERO));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        (cs, addr, f)
    }

    fn adaptive_vm(
        fuse_after: u32,
        thread_after: u32,
    ) -> (Vm<crate::host::NoHost>, u64, crate::code::FuncHandle) {
        let (cs, addr, f) = loop_code();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::Adaptive {
            fuse_after,
            thread_after,
            background: false,
        });
        (vm, addr, f)
    }

    fn adaptive_vm_bg(
        fuse_after: u32,
        thread_after: u32,
    ) -> (Vm<crate::host::NoHost>, u64, crate::code::FuncHandle) {
        let (cs, addr, f) = loop_code();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::Adaptive {
            fuse_after,
            thread_after,
            background: true,
        });
        (vm, addr, f)
    }

    #[test]
    fn functions_climb_tiers_at_the_configured_thresholds() {
        let (mut vm, addr, _) = adaptive_vm(2, 4);
        let expect = [
            Tier::Decode,   // run 1: 0 completed runs
            Tier::Decode,   // run 2: 1 completed
            Tier::Fused,    // run 3: 2 completed >= fuse_after
            Tier::Fused,    // run 4
            Tier::Threaded, // run 5: 4 completed >= thread_after
            Tier::Threaded, // run 6
        ];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(vm.call(addr, &[5]).unwrap(), 15, "run {}", i + 1);
            let (tier, runs) = vm.adaptive_tier(addr).expect("tracked");
            assert_eq!(tier, *want, "run {}", i + 1);
            assert_eq!(runs, i as u64 + 1);
        }
        let s = vm.adaptive_stats();
        assert_eq!(s.promotions, 2);
        assert_eq!(s.demotions, 0);
        assert_eq!((s.runs_tier0, s.runs_tier1, s.runs_tier2), (2, 2, 2));
        assert_eq!(s.total_runs, 6);
        assert!(s.translation_ns > 0, "promoted tiers were translated");
    }

    #[test]
    fn all_tiers_agree_with_reference_results() {
        for n in [0u64, 1, 10, 100] {
            let (mut vm, addr, _) = adaptive_vm(1, 2);
            let want: u64 = (1..=n).sum();
            for run in 0..5 {
                assert_eq!(vm.call(addr, &[n]).unwrap(), want, "n={n} run={run}");
            }
        }
    }

    #[test]
    fn hot_loop_promotes_mid_run_off_the_backedge_clock() {
        // One entry, but hundreds of loop iterations: the backedge
        // clock (64 iterations ≈ one run) must lift the function out of
        // tier 0 during its first run, while the entry count is still 1.
        let (mut vm, addr, _) = adaptive_vm(2, 100);
        assert_eq!(vm.call(addr, &[300]).unwrap(), (1..=300).sum::<u64>());
        let (tier, runs) = vm.adaptive_tier(addr).expect("tracked");
        assert_eq!(runs, 1, "backedges are not entries");
        assert_eq!(tier, Tier::Fused, "promoted inside the first run");
        let s = vm.adaptive_stats();
        assert_eq!(s.total_runs, 1);
        assert_eq!(s.promotions, 1, "one level gained, mid-run");
        assert_eq!(s.runs_tier0, 1, "the entry itself was counted at tier 0");
        // A short-loop function stays on its entry schedule.
        let (mut vm, addr, _) = adaptive_vm(2, 100);
        assert_eq!(vm.call(addr, &[10]).unwrap(), 55);
        assert_eq!(vm.adaptive_tier(addr).unwrap().0, Tier::Decode);
    }

    #[test]
    fn epoch_bump_demotes_and_resets_run_counts() {
        let (mut vm, addr, _) = adaptive_vm(1, 2);
        for _ in 0..4 {
            vm.call(addr, &[3]).unwrap();
        }
        assert_eq!(vm.adaptive_tier(addr).unwrap().0, Tier::Threaded);
        // A live patch bumps the epoch without freeing anything.
        vm.state_mut().code.patch(
            ((addr - crate::code::CODE_BASE) / 4) as usize,
            Insn::i(Op::Addiw, AT0, ZERO, 0),
        );
        assert_eq!(vm.call(addr, &[3]).unwrap(), 6);
        let (tier, runs) = vm.adaptive_tier(addr).unwrap();
        assert_eq!(tier, Tier::Decode, "demoted to tier 0");
        assert_eq!(runs, 1, "run count restarted");
        let s = vm.adaptive_stats();
        assert_eq!(s.demotions, 2, "threaded function lost two levels");
        assert!(s.promotions >= s.demotions);
    }

    #[test]
    fn freed_hot_function_faults_stale_at_every_tier() {
        for warm_runs in [0u64, 1, 3, 8] {
            let (mut vm, addr, f) = adaptive_vm(1, 2);
            for _ in 0..warm_runs {
                vm.call(addr, &[2]).unwrap();
            }
            vm.state_mut().code.free_function(f).unwrap();
            assert_eq!(
                vm.call(addr, &[2]),
                Err(crate::error::VmError::StaleCode(addr)),
                "after {warm_runs} warm runs"
            );
            assert!(vm.adaptive_tier(addr).is_none(), "no live range remains");
        }
    }

    #[test]
    fn cold_functions_report_translation_saved_once_priced() {
        let (mut cs, hot, _) = loop_code();
        let g = cs.begin_function("once");
        cs.push(Insn::i(Op::Addiw, A0, A0, 7));
        cs.push(Insn::ret());
        let cold = cs.finish_function(g).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::Adaptive {
            fuse_after: 2,
            thread_after: 100,
            background: false,
        });
        vm.call(cold, &[1]).unwrap();
        assert_eq!(vm.adaptive_stats().translation_ns_saved, 0, "no price yet");
        for _ in 0..4 {
            vm.call(hot, &[4]).unwrap();
        }
        let s = vm.adaptive_stats();
        assert!(s.translation_ns > 0);
        assert!(
            s.translation_ns_saved > 0,
            "run-once function's avoided translation is priced: {s:?}"
        );
    }

    #[test]
    fn saved_estimate_is_exact_integer_arithmetic() {
        // 1000 ns over 4 words prices 10 cold words at 2500 ns.
        assert_eq!(saved_estimate(10, 1000, 4), 2500);
        // Sub-ns-per-word rates keep precision the f64 round-trip lost:
        // 3 ns over 4 words prices 10 cold words at 30/4 = 7 ns.
        assert_eq!(saved_estimate(10, 3, 4), 7);
        // No price signal: nothing translated, or a zero-duration cold
        // sample on a coarse clock.
        assert_eq!(saved_estimate(10, 0, 4), 0);
        assert_eq!(saved_estimate(10, 1000, 0), 0);
        assert_eq!(saved_estimate(0, 1000, 4), 0);
        // Counters too large for f64's 53-bit mantissa stay exact.
        let big = (1u64 << 60) + 1;
        assert_eq!(saved_estimate(big, 7, 7), big);
        // The u128 product cannot overflow; a result past u64 saturates.
        assert_eq!(saved_estimate(u64::MAX, u64::MAX, 1), u64::MAX);
    }

    #[test]
    fn background_promotion_matches_reference_results() {
        let (mut vm, addr, _) = adaptive_vm_bg(1, 2);
        for run in 0..8 {
            assert_eq!(vm.call(addr, &[10]).unwrap(), 55, "run {run}");
        }
        vm.drain_background_translations();
        assert_eq!(vm.call(addr, &[10]).unwrap(), 55, "post-drain run");
        let s = vm.adaptive_stats();
        assert!(
            s.async_translations >= 1,
            "worker-built translations were swapped in: {s:?}"
        );
        assert_eq!(s.discarded_stale, 0);
        assert!(s.swap_latency_ns > 0, "swap latency was accounted");
        assert!(
            s.translation_ns > 0,
            "worker build time lands in translation_ns"
        );
        let (tier, _) = vm.adaptive_tier(addr).expect("tracked");
        assert_eq!(tier, Tier::Threaded, "climbed to the top tier");
    }

    #[test]
    fn epoch_bump_between_enqueue_and_completion_discards_translation() {
        use crate::isa::{Insn, Op};
        let (mut vm, addr, _) = adaptive_vm_bg(1, 100);
        // Two entries: the second crosses `fuse_after` and enqueues a
        // tier-1 build on the worker.
        assert_eq!(vm.call(addr, &[3]).unwrap(), 6);
        assert_eq!(vm.call(addr, &[3]).unwrap(), 6);
        let (tier, _) = vm.adaptive_tier(addr).expect("tracked");
        assert_eq!(tier, Tier::Fused, "promotion granted at entry 2");
        // The epoch bump lands between enqueue and receipt: patch a
        // live word (same instruction, so results are unchanged) before
        // draining the worker.
        vm.state_mut().code.patch(
            ((addr - crate::code::CODE_BASE) / 4) as usize,
            Insn::i(Op::Addiw, AT0, ZERO, 0),
        );
        vm.drain_background_translations();
        let s = vm.adaptive_stats();
        assert_eq!(
            s.discarded_stale, 1,
            "the stale translation was discarded, not installed: {s:?}"
        );
        assert_eq!(s.async_translations, 0, "nothing was swapped in");
        assert_eq!(vm.exec_stats().translations, 0, "no buffer was installed");
        // The function re-promotes cleanly from tier 0: the next run
        // observes the bump and demotes, then the climb restarts.
        assert_eq!(vm.call(addr, &[3]).unwrap(), 6);
        let (tier, runs) = vm.adaptive_tier(addr).expect("re-tracked");
        assert_eq!((tier, runs), (Tier::Decode, 1), "restarted at tier 0");
        assert_eq!(vm.call(addr, &[3]).unwrap(), 6);
        vm.drain_background_translations();
        assert_eq!(vm.call(addr, &[3]).unwrap(), 6);
        let (tier, _) = vm.adaptive_tier(addr).expect("tracked");
        assert_eq!(tier, Tier::Fused, "re-promoted after the bump");
        let s = vm.adaptive_stats();
        assert_eq!(s.async_translations, 1, "the re-built translation landed");
        assert_eq!(s.discarded_stale, 1);
    }

    #[test]
    fn shared_hub_serves_multiple_vms_without_local_workers() {
        let hub = TransHub::spawn();
        let mut vms = Vec::new();
        for _ in 0..2 {
            let (mut vm, addr, _) = adaptive_vm_bg(1, 2);
            vm.set_translation_hub(hub.clone());
            vms.push((vm, addr));
        }
        for (vm, addr) in &mut vms {
            for run in 0..6 {
                assert_eq!(vm.call(*addr, &[10]).unwrap(), 55, "run {run}");
            }
            vm.drain_background_translations();
            assert_eq!(vm.call(*addr, &[10]).unwrap(), 55, "post-drain run");
            let s = vm.adaptive_stats();
            assert!(
                s.async_translations >= 1,
                "hub-built translations landed: {s:?}"
            );
            assert!(vm.trans.worker.is_none(), "no per-VM worker was spawned");
            let (tier, _) = vm.adaptive_tier(*addr).expect("tracked");
            assert_eq!(tier, Tier::Threaded, "climbed to the top tier");
        }
        // Dropping VMs before the hub, then the hub itself, must not
        // hang or panic (requests possibly still queued).
        drop(vms);
        drop(hub);
    }

    #[test]
    fn hub_is_shareable_across_threads() {
        let hub = TransHub::<crate::host::NoHost>::spawn();
        let mut handles = Vec::new();
        for t in 0..2 {
            let hub = hub.clone();
            handles.push(thread::spawn(move || {
                let (mut vm, addr, _) = adaptive_vm_bg(1, 2);
                vm.set_translation_hub(hub);
                for run in 0..6 {
                    assert_eq!(vm.call(addr, &[10]).unwrap(), 55, "t{t} run {run}");
                }
                vm.drain_background_translations();
                assert_eq!(vm.call(addr, &[10]).unwrap(), 55, "t{t} post-drain");
                vm.adaptive_stats().async_translations
            }));
        }
        let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total >= 2, "each thread's builds came back: {total}");
    }

    #[test]
    fn background_worker_shuts_down_on_drop() {
        let (mut vm, addr, _) = adaptive_vm_bg(1, 2);
        for _ in 0..4 {
            vm.call(addr, &[5]).unwrap();
        }
        // Dropping the VM drops the cache, closes the request channel,
        // and joins the worker — this must not hang or panic even with
        // requests possibly still in flight.
        drop(vm);
    }
}
