//! The adaptive execution engine: count-triggered per-function tiering.
//!
//! The fixed engines trade translation cost against dispatch speed: the
//! reference interpreter ([`ExecEngine::DecodePerStep`]) pays nothing
//! up front and the most per instruction, the predecoded+fused engine
//! pays one decoding pass per function, and the direct-threaded engine
//! pays the most translation (handler selection, block summaries) for
//! the fastest dispatch. Which trade wins depends on how often a
//! function runs — the paper's Figure 5 crossover, recreated at the
//! execution layer. [`ExecEngine::Adaptive`] makes the choice per
//! function at run time:
//!
//! ```text
//!            runs >= fuse_after        runs >= thread_after
//!   tier 0 ─────────────────▶ tier 1 ─────────────────▶ tier 2
//!   decode-per-step          predecoded+fused          threaded
//!      ▲                        │                         │
//!      └────────────────────────┴─────────────────────────┘
//!                 live-epoch bump (free / patch / eviction):
//!                 demote to tier 0, drop translations + counts
//! ```
//!
//! A "run" is one entry of control into the function's live range from
//! outside it (the invocation counter of a classic tiered JIT): calls,
//! returns into a caller, and cross-function jumps all count; internal
//! loops do not. The promotion clock additionally earns one run per
//! `BACKEDGES_PER_RUN_BITS`-weighted batch of backward transfers
//! observed while single-stepping at tier 0 (the backedge counter of a
//! classic tiered JIT), so a loop-heavy function promotes inside its
//! first run instead of paying decode price for every iteration until
//! its entry count catches up. Promotion is evaluated at entry (or at
//! a backedge clock tick), against the number of *completed* prior
//! entries, and is monotone per function — a function only moves up
//! tiers until an epoch bump resets it.
//!
//! # Equivalence contract
//!
//! The adaptive engine composes the existing dispatchers and falls back
//! to the same reference single-step path, so it inherits the
//! observational-equivalence contract: identical result values,
//! `cycles`, `insns`, exit status, and error at the same instruction
//! (including [`VmError::OutOfFuel`] under any fuel budget), before,
//! during, and after a promotion. `tests/exec_differential.rs` sweeps
//! fuel budgets across promotion boundaries to enforce this.
//!
//! # Invalidation
//!
//! Tier state lives in the `TransCache` next to the translations it
//! justified and is validated against [`CodeSpace::live_epoch`] on
//! every outer-loop iteration (hence after every host call). On any
//! epoch change — a function freed directly or by `tcc-cache` eviction,
//! or a live word patched — every function demotes to tier 0, run
//! counts reset, and stale translations are dropped; stale pcs then
//! fault [`VmError::StaleCode`] / [`VmError::BadPc`] from the exact
//! same reference path as every other engine.
//!
//! [`ExecEngine::DecodePerStep`]: crate::predecode::ExecEngine::DecodePerStep
//! [`ExecEngine::Adaptive`]: crate::predecode::ExecEngine::Adaptive
//! [`CodeSpace::live_epoch`]: crate::code::CodeSpace::live_epoch

use std::sync::Arc;
use std::time::Instant;

use crate::code::CODE_BASE;
use crate::error::VmError;
use crate::host::HostCall;
use crate::interp::{ExitStatus, Step, Vm, RETURN_SENTINEL};
use crate::predecode::DecodedFn;
use crate::threaded::ThreadedFn;

/// Default promotion threshold to tier 1 (predecoded+fused): completed
/// runs after which one decoding pass has paid for itself. Calibrated
/// by the `suite adaptive` reuse sweep.
pub const DEFAULT_FUSE_AFTER: u32 = 2;

/// Default promotion threshold to tier 2 (direct-threaded): completed
/// runs after which the heavier handler-table translation has paid for
/// itself. Calibrated by the `suite adaptive` reuse sweep.
pub const DEFAULT_THREAD_AFTER: u32 = 8;

/// Execution tier of one function under the adaptive engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Decode-per-step: no translation cost.
    Decode = 0,
    /// Predecoded buffer with superinstruction fusion.
    Fused = 1,
    /// Direct-threaded dispatch with basic-block fuel batching.
    Threaded = 2,
}

/// Sentinel in [`TransCache::tier_idx`]: no tier record covers this
/// word yet.
///
/// [`TransCache::tier_idx`]: crate::predecode::TransCache::tier_idx
pub(crate) const NO_TIER: u32 = u32::MAX;

/// Backward branches observed while single-stepping that count as one
/// extra completed run (`64`): a loop-heavy function proves its heat
/// in loop iterations long before its entry count does, and every
/// iteration spent at tier 0 costs full decode price. The weight is a
/// power of two so the hot path tests promotion with a mask, and large
/// enough that short loops (the unit-test kernels) never promote off
/// their entry schedule.
pub(crate) const BACKEDGES_PER_RUN_BITS: u32 = 6;

/// Per-function adaptive state, indexed from `tier_idx` by any word of
/// the function's live range.
#[derive(Clone, Copy, Debug)]
pub(crate) struct FnTier {
    /// Start word of the function's live range.
    pub(crate) start: usize,
    /// Entries of control into this function's range — the promotion
    /// clock. Monotone until an epoch bump drops the whole table.
    pub(crate) runs: u64,
    /// Backward branches taken inside the range while at tier 0 — the
    /// hotspot clock, weighted down by [`BACKEDGES_PER_RUN_BITS`].
    pub(crate) backedges: u64,
    /// Current tier; only ever moves up between epoch bumps.
    pub(crate) tier: Tier,
    /// Words in the function, for the translation-cost-saved estimate.
    pub(crate) words: u32,
}

impl FnTier {
    /// The promotion clock: completed entries plus loop iterations
    /// observed at tier 0, weighted so `2^BACKEDGES_PER_RUN_BITS`
    /// backedges count as one run.
    #[inline]
    fn effective_runs(&self) -> u64 {
        self.runs + (self.backedges >> BACKEDGES_PER_RUN_BITS)
    }
}

/// Counters for the adaptive engine: where runs executed, how functions
/// moved between tiers, and what translation cost was spent vs avoided.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdaptiveStats {
    /// Function entries executed, across all tiers. Always equals
    /// `runs_tier0 + runs_tier1 + runs_tier2` (tested invariant).
    pub total_runs: u64,
    /// Function entries executed on decode-per-step (tier 0).
    pub runs_tier0: u64,
    /// Function entries executed on the predecoded+fused engine (tier 1).
    pub runs_tier1: u64,
    /// Function entries executed on the direct-threaded engine (tier 2).
    pub runs_tier2: u64,
    /// Tier levels gained, cumulative (a 0→2 jump counts 2). Always
    /// `>= demotions` — a level can only be lost after it was gained.
    pub promotions: u64,
    /// Tier levels lost to epoch-bump demotions, cumulative.
    pub demotions: u64,
    /// Wall-clock nanoseconds spent translating promoted functions
    /// (decoded and threaded buffers), under this engine only.
    pub translation_ns: u64,
    /// Estimated nanoseconds of translation *avoided* so far: words of
    /// run-but-never-promoted functions, priced at this session's
    /// observed translation cost per word. `0` until something has been
    /// translated (no price signal yet).
    pub translation_ns_saved: u64,
    /// Code words translated under this engine (the price signal for
    /// [`AdaptiveStats::translation_ns_saved`]).
    pub translated_words: u64,
}

/// The translation handle an [`Active`] function dispatches through.
/// `None` covers tier 0 and tiers whose translation was refused — both
/// single-step on the reference path.
enum ActiveTr<H> {
    None,
    Fused(Arc<DecodedFn>),
    Threaded(Arc<ThreadedFn<H>>),
}

/// A function the adaptive run loop is attributed to (or just left):
/// absolute bounds, its tier record, and the translation handle for its
/// tier, all memoized in the loop so steady-state dispatch touches no
/// cache at all. The fixed threaded engine pays one `tmap` probe and an
/// `Arc` clone per call/return transition; keeping the two sides of the
/// transition warm here is what lets adaptive match it (`suite
/// adaptive` gates the gap).
struct Active<H> {
    /// Absolute address bounds of the function's live range.
    lo: u64,
    hi: u64,
    /// Index into `TransCache::tier_fns`.
    fi: u32,
    /// Tier [`Active::tr`] was fetched for; refreshed on promotion.
    tier: Tier,
    tr: ActiveTr<H>,
}

impl<H> Active<H> {
    /// Whether `pc` is a word inside this function's live range.
    #[inline]
    fn contains(&self, pc: u64) -> bool {
        pc >= self.lo && pc < self.hi && pc.is_multiple_of(4)
    }
}

impl<H: HostCall> Vm<H> {
    /// The adaptive engine's run loop. Structure matches
    /// `run_predecoded` / `run_threaded` — translated dispatch where the
    /// function's tier has one, reference-engine single steps otherwise
    /// — with tier selection at each function entry.
    pub(crate) fn run_adaptive(
        &mut self,
        mut pc: u64,
        fuse_after: u32,
        thread_after: u32,
    ) -> Result<ExitStatus, VmError> {
        // The attributed function and the one control most recently
        // left. Entries are counted only on range transitions, and the
        // common transition shape — a call/return ping-pong between a
        // caller and one callee — swaps the memoized pair without any
        // range resolution or translation lookup.
        let mut cur: Option<Active<H>> = None;
        let mut prev: Option<Active<H>> = None;
        loop {
            if pc == RETURN_SENTINEL {
                return Ok(ExitStatus::Returned);
            }
            let epoch = self.state.code.live_epoch();
            if epoch != self.trans.epoch {
                self.demote_all(epoch);
                cur = None;
                prev = None;
            }
            let in_cur = match cur {
                Some(ref c) => c.contains(pc),
                None => false,
            };
            if !in_cur {
                let back = match prev {
                    Some(ref p) => p.contains(pc),
                    None => false,
                };
                if back {
                    std::mem::swap(&mut cur, &mut prev);
                    let c = cur.as_mut().expect("swapped from a hit");
                    let tier = self.count_entry(c.fi, fuse_after, thread_after);
                    if tier != c.tier {
                        c.tier = tier;
                        c.tr = self.fetch_translation(pc, tier);
                    }
                } else {
                    prev = std::mem::replace(
                        &mut cur,
                        self.enter_function(pc, fuse_after, thread_after),
                    );
                }
            }
            // `cur` is a loop local, so dispatching through its memoized
            // translation borrows nothing from `self`.
            let step = if let Some(Active {
                tr: ActiveTr::Threaded(ref tr),
                ..
            }) = cur
            {
                self.dispatch_threaded(tr, pc)?
            } else if let Some(Active {
                tr: ActiveTr::Fused(ref tr),
                ..
            }) = cur
            {
                self.dispatch(tr, pc)?
            } else {
                let step = self.step_adaptive_slow(pc)?;
                // Hotspot clock: a backward transfer inside a tier-0
                // function is a loop iteration paid at full decode
                // price; enough of them promote the function mid-run,
                // without waiting for its entry count to catch up.
                if let (Some(a), &Step::At(next)) = (cur.as_mut(), &step) {
                    if a.tier == Tier::Decode && next <= pc && a.contains(next) {
                        self.note_backedge(a, next, fuse_after, thread_after);
                    }
                }
                step
            };
            match step {
                Step::At(next) => pc = next,
                Step::Done(status) => return Ok(status),
            }
        }
    }

    /// One reference-engine step with slow-path accounting (identical
    /// to the decode-per-step engine's loop body).
    #[inline]
    fn step_adaptive_slow(&mut self, pc: u64) -> Result<Step, VmError> {
        let step = self.step_slow(pc)?;
        self.trans.stats.slow_insns += 1;
        Ok(step)
    }

    /// Records one entry of control into the live function containing
    /// `pc`, promoting it first if its completed-run count has crossed a
    /// threshold. Returns the memoized function state, or `None` when
    /// `pc` is not inside live code (the slow path then raises the exact
    /// reference fault).
    fn enter_function(&mut self, pc: u64, fuse_after: u32, thread_after: u32) -> Option<Active<H>> {
        if pc < CODE_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        let idx = ((pc - CODE_BASE) / 4) as usize;
        let fi = match self.trans.tier_idx.get(idx).copied() {
            Some(fi) if fi != NO_TIER => fi,
            _ => {
                // First entry since the last epoch bump: resolve the
                // live range once and mirror it into the dense index so
                // every later entry is a single array load.
                let (start, end) = self.state.code.live_range_containing(idx)?;
                let fi = u32::try_from(self.trans.tier_fns.len())
                    .expect("fewer than 2^32 live functions per epoch");
                self.trans.tier_fns.push(FnTier {
                    start,
                    runs: 0,
                    backedges: 0,
                    tier: Tier::Decode,
                    words: (end - start) as u32,
                });
                if self.trans.tier_idx.len() < end {
                    self.trans.tier_idx.resize(end, NO_TIER);
                }
                for slot in &mut self.trans.tier_idx[start..end] {
                    *slot = fi;
                }
                fi
            }
        };
        let tier = self.count_entry(fi, fuse_after, thread_after);
        let f = &self.trans.tier_fns[fi as usize];
        let lo = CODE_BASE + (f.start as u64) * 4;
        let hi = lo + u64::from(f.words) * 4;
        let tr = self.fetch_translation(pc, tier);
        Some(Active {
            lo,
            hi,
            fi,
            tier,
            tr,
        })
    }

    /// Counts one entry of control into tier record `fi`, promoting the
    /// function first if its completed-run count has crossed a
    /// threshold. Returns the tier this entry executes at. This is the
    /// whole per-transition cost once a function is memoized.
    #[inline]
    fn count_entry(&mut self, fi: u32, fuse_after: u32, thread_after: u32) -> Tier {
        let entry = &mut self.trans.tier_fns[fi as usize];
        let clock = entry.effective_runs();
        let target = if clock >= u64::from(thread_after) {
            Tier::Threaded
        } else if clock >= u64::from(fuse_after) {
            Tier::Fused
        } else {
            Tier::Decode
        };
        let promoted = if target > entry.tier {
            let levels = target as u64 - entry.tier as u64;
            entry.tier = target;
            levels
        } else {
            0
        };
        entry.runs += 1;
        let tier = entry.tier;
        let astats = &mut self.trans.astats;
        astats.promotions += promoted;
        astats.total_runs += 1;
        match tier {
            Tier::Decode => astats.runs_tier0 += 1,
            Tier::Fused => astats.runs_tier1 += 1,
            Tier::Threaded => astats.runs_tier2 += 1,
        }
        tier
    }

    /// Counts one backward transfer inside the tier-0 function `a` and
    /// promotes it in place once enough loop iterations have accrued
    /// (re-evaluated only when the weighted clock ticks, so the common
    /// case is one increment and one mask test).
    #[inline]
    fn note_backedge(&mut self, a: &mut Active<H>, pc: u64, fuse_after: u32, thread_after: u32) {
        let entry = &mut self.trans.tier_fns[a.fi as usize];
        entry.backedges += 1;
        if entry.backedges & ((1 << BACKEDGES_PER_RUN_BITS) - 1) != 0 {
            return;
        }
        let clock = entry.effective_runs();
        let target = if clock >= u64::from(thread_after) {
            Tier::Threaded
        } else if clock >= u64::from(fuse_after) {
            Tier::Fused
        } else {
            return;
        };
        if target > entry.tier {
            let levels = target as u64 - entry.tier as u64;
            entry.tier = target;
            self.trans.astats.promotions += levels;
            a.tier = target;
            a.tr = self.fetch_translation(pc, target);
        }
    }

    /// The translation handle for `tier` at `pc`, building (and timing)
    /// it on first use.
    fn fetch_translation(&mut self, pc: u64, tier: Tier) -> ActiveTr<H> {
        match tier {
            Tier::Threaded => match self.threaded_at_counted(pc) {
                Some(tr) => ActiveTr::Threaded(tr),
                None => ActiveTr::None,
            },
            Tier::Fused => match self.translation_at_counted(pc) {
                Some(tr) => ActiveTr::Fused(tr),
                None => ActiveTr::None,
            },
            Tier::Decode => ActiveTr::None,
        }
    }

    /// Epoch bump observed: count the tier levels lost, drop every
    /// translation and all tier state, and adopt the new epoch. The
    /// next entry of any function starts over at tier 0 with a zero run
    /// count.
    fn demote_all(&mut self, epoch: u64) {
        let lost: u64 = self.trans.tier_fns.iter().map(|t| t.tier as u64).sum();
        self.trans.astats.demotions += lost;
        self.trans.clear();
        self.trans.epoch = epoch;
        self.trans.stats.invalidations += 1;
    }

    /// `translation_at`, with the build (cache-miss) path timed into
    /// [`AdaptiveStats::translation_ns`].
    fn translation_at_counted(
        &mut self,
        pc: u64,
    ) -> Option<std::sync::Arc<crate::predecode::DecodedFn>> {
        let idx = ((pc - CODE_BASE) / 4) as usize;
        if self.trans.decoded_cached(idx) {
            return self.translation_at(pc, true);
        }
        let words_before = self.trans.stats.translated_words;
        let t0 = Instant::now();
        let tr = self.translation_at(pc, true);
        let built = self.trans.stats.translated_words - words_before;
        if built > 0 {
            self.trans.astats.translation_ns += t0.elapsed().as_nanos() as u64;
            self.trans.astats.translated_words += built;
        }
        tr
    }

    /// `threaded_at`, with the build (cache-miss) path timed into
    /// [`AdaptiveStats::translation_ns`].
    fn threaded_at_counted(
        &mut self,
        pc: u64,
    ) -> Option<std::sync::Arc<crate::threaded::ThreadedFn<H>>> {
        let idx = ((pc - CODE_BASE) / 4) as usize;
        if self.trans.threaded_cached(idx) {
            return self.threaded_at(pc);
        }
        let words_before = self.trans.stats.translated_words;
        let t0 = Instant::now();
        let tr = self.threaded_at(pc);
        let built = self.trans.stats.translated_words - words_before;
        if built > 0 {
            self.trans.astats.translation_ns += t0.elapsed().as_nanos() as u64;
            self.trans.astats.translated_words += built;
        }
        tr
    }

    /// Adaptive-engine counters, with the translation-cost-saved
    /// estimate priced at this session's observed ns/word.
    pub fn adaptive_stats(&self) -> AdaptiveStats {
        let mut s = self.trans.astats;
        if s.translated_words > 0 {
            let per_word = s.translation_ns as f64 / s.translated_words as f64;
            let cold_words: u64 = self
                .trans
                .tier_fns
                .iter()
                .filter(|t| t.tier == Tier::Decode && t.runs > 0)
                .map(|t| u64::from(t.words))
                .sum();
            s.translation_ns_saved = (cold_words as f64 * per_word) as u64;
        }
        s
    }

    /// The adaptive tier and run count of the live function containing
    /// `addr`: `None` when `addr` is not inside live code or the
    /// function has not been entered since the last epoch bump.
    /// Diagnostic surface for tests and tooling.
    pub fn adaptive_tier(&self, addr: u64) -> Option<(Tier, u64)> {
        if addr < CODE_BASE || !addr.is_multiple_of(4) {
            return None;
        }
        // A pending (not-yet-observed) epoch bump means every record is
        // due for demotion: report untracked rather than stale state.
        if self.state.code.live_epoch() != self.trans.epoch {
            return None;
        }
        let idx = ((addr - CODE_BASE) / 4) as usize;
        let fi = self.trans.tier_idx.get(idx).copied()?;
        if fi == NO_TIER {
            return None;
        }
        let t = &self.trans.tier_fns[fi as usize];
        Some((t.tier, t.runs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::code::CodeSpace;
    use crate::isa::{Insn, Op};
    use crate::predecode::ExecEngine;
    use crate::regs::{A0, AT0, ZERO};

    /// sum(1..=n) by counted loop (same shape as predecode's tests).
    fn loop_code() -> (CodeSpace, u64, crate::code::FuncHandle) {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("sum");
        cs.push(Insn::i(Op::Addiw, AT0, ZERO, 0));
        cs.push(Insn::i(Op::Beq, A0, ZERO, 3));
        cs.push(Insn::r(Op::Addw, AT0, AT0, A0));
        cs.push(Insn::i(Op::Addiw, A0, A0, -1));
        cs.push(Insn::j(Op::J, -4));
        cs.push(Insn::r(Op::Addw, A0, AT0, ZERO));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        (cs, addr, f)
    }

    fn adaptive_vm(
        fuse_after: u32,
        thread_after: u32,
    ) -> (Vm<crate::host::NoHost>, u64, crate::code::FuncHandle) {
        let (cs, addr, f) = loop_code();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::Adaptive {
            fuse_after,
            thread_after,
        });
        (vm, addr, f)
    }

    #[test]
    fn functions_climb_tiers_at_the_configured_thresholds() {
        let (mut vm, addr, _) = adaptive_vm(2, 4);
        let expect = [
            Tier::Decode,   // run 1: 0 completed runs
            Tier::Decode,   // run 2: 1 completed
            Tier::Fused,    // run 3: 2 completed >= fuse_after
            Tier::Fused,    // run 4
            Tier::Threaded, // run 5: 4 completed >= thread_after
            Tier::Threaded, // run 6
        ];
        for (i, want) in expect.iter().enumerate() {
            assert_eq!(vm.call(addr, &[5]).unwrap(), 15, "run {}", i + 1);
            let (tier, runs) = vm.adaptive_tier(addr).expect("tracked");
            assert_eq!(tier, *want, "run {}", i + 1);
            assert_eq!(runs, i as u64 + 1);
        }
        let s = vm.adaptive_stats();
        assert_eq!(s.promotions, 2);
        assert_eq!(s.demotions, 0);
        assert_eq!((s.runs_tier0, s.runs_tier1, s.runs_tier2), (2, 2, 2));
        assert_eq!(s.total_runs, 6);
        assert!(s.translation_ns > 0, "promoted tiers were translated");
    }

    #[test]
    fn all_tiers_agree_with_reference_results() {
        for n in [0u64, 1, 10, 100] {
            let (mut vm, addr, _) = adaptive_vm(1, 2);
            let want: u64 = (1..=n).sum();
            for run in 0..5 {
                assert_eq!(vm.call(addr, &[n]).unwrap(), want, "n={n} run={run}");
            }
        }
    }

    #[test]
    fn hot_loop_promotes_mid_run_off_the_backedge_clock() {
        // One entry, but hundreds of loop iterations: the backedge
        // clock (64 iterations ≈ one run) must lift the function out of
        // tier 0 during its first run, while the entry count is still 1.
        let (mut vm, addr, _) = adaptive_vm(2, 100);
        assert_eq!(vm.call(addr, &[300]).unwrap(), (1..=300).sum::<u64>());
        let (tier, runs) = vm.adaptive_tier(addr).expect("tracked");
        assert_eq!(runs, 1, "backedges are not entries");
        assert_eq!(tier, Tier::Fused, "promoted inside the first run");
        let s = vm.adaptive_stats();
        assert_eq!(s.total_runs, 1);
        assert_eq!(s.promotions, 1, "one level gained, mid-run");
        assert_eq!(s.runs_tier0, 1, "the entry itself was counted at tier 0");
        // A short-loop function stays on its entry schedule.
        let (mut vm, addr, _) = adaptive_vm(2, 100);
        assert_eq!(vm.call(addr, &[10]).unwrap(), 55);
        assert_eq!(vm.adaptive_tier(addr).unwrap().0, Tier::Decode);
    }

    #[test]
    fn epoch_bump_demotes_and_resets_run_counts() {
        let (mut vm, addr, _) = adaptive_vm(1, 2);
        for _ in 0..4 {
            vm.call(addr, &[3]).unwrap();
        }
        assert_eq!(vm.adaptive_tier(addr).unwrap().0, Tier::Threaded);
        // A live patch bumps the epoch without freeing anything.
        vm.state_mut().code.patch(
            ((addr - crate::code::CODE_BASE) / 4) as usize,
            Insn::i(Op::Addiw, AT0, ZERO, 0),
        );
        assert_eq!(vm.call(addr, &[3]).unwrap(), 6);
        let (tier, runs) = vm.adaptive_tier(addr).unwrap();
        assert_eq!(tier, Tier::Decode, "demoted to tier 0");
        assert_eq!(runs, 1, "run count restarted");
        let s = vm.adaptive_stats();
        assert_eq!(s.demotions, 2, "threaded function lost two levels");
        assert!(s.promotions >= s.demotions);
    }

    #[test]
    fn freed_hot_function_faults_stale_at_every_tier() {
        for warm_runs in [0u64, 1, 3, 8] {
            let (mut vm, addr, f) = adaptive_vm(1, 2);
            for _ in 0..warm_runs {
                vm.call(addr, &[2]).unwrap();
            }
            vm.state_mut().code.free_function(f).unwrap();
            assert_eq!(
                vm.call(addr, &[2]),
                Err(crate::error::VmError::StaleCode(addr)),
                "after {warm_runs} warm runs"
            );
            assert!(vm.adaptive_tier(addr).is_none(), "no live range remains");
        }
    }

    #[test]
    fn cold_functions_report_translation_saved_once_priced() {
        let (mut cs, hot, _) = loop_code();
        let g = cs.begin_function("once");
        cs.push(Insn::i(Op::Addiw, A0, A0, 7));
        cs.push(Insn::ret());
        let cold = cs.finish_function(g).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_engine(ExecEngine::Adaptive {
            fuse_after: 2,
            thread_after: 100,
        });
        vm.call(cold, &[1]).unwrap();
        assert_eq!(vm.adaptive_stats().translation_ns_saved, 0, "no price yet");
        for _ in 0..4 {
            vm.call(hot, &[4]).unwrap();
        }
        let s = vm.adaptive_stats();
        assert!(s.translation_ns > 0);
        assert!(
            s.translation_ns_saved > 0,
            "run-once function's avoided translation is priced: {s:?}"
        );
    }
}
