//! Instruction set architecture: opcodes, instruction words, binary
//! encoding and decoding.
//!
//! Every instruction encodes into one 32-bit word (the paper's targets were
//! fixed-width RISCs; keeping that property means immediates larger than 14
//! bits must be synthesized with `sethi`+`ori` sequences, exactly the cost
//! structure tcc's VCODE macros dealt with).
//!
//! Encodings (bit 31 is the MSB):
//!
//! | format | 31..24 | 23..19 | 18..14 | 13..9 | rest |
//! |--------|--------|--------|--------|-------|------|
//! | R      | opcode | rd     | rs1    | rs2   | 0    |
//! | I      | opcode | rd     | rs1    | imm14 (signed, bits 13..0) ||
//! | J      | opcode | imm24 (signed, bits 23..0) |||
//! | S      | opcode | rd     | imm19 (signed, bits 18..0) |||
//!
//! Branches are I-format with `rd`/`rs1` as the two compared registers and
//! the immediate as a **word** offset relative to the *next* instruction.
//! `J`/`Jal` use a signed 24-bit word offset. Floating-point registers are
//! carried in the same 5-bit fields (only values 0..16 are valid).

use crate::error::VmError;
use std::fmt;

/// An integer register name (`r0`..`r31`). `r0` reads as zero and ignores
/// writes.
///
/// ```
/// use tcc_vm::isa::Reg;
/// assert_eq!(Reg(4).to_string(), "r4");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u8);

/// A double-precision floating point register name (`f0`..`f15`).
///
/// ```
/// use tcc_vm::isa::FReg;
/// assert_eq!(FReg(2).to_string(), "f2");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct FReg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Number of integer registers.
pub const NUM_REGS: usize = 32;
/// Number of floating point registers.
pub const NUM_FREGS: usize = 16;

/// Instruction word format. Determines which [`Insn`] fields are encoded.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Format {
    /// Three-register: `rd`, `rs1`, `rs2`.
    R,
    /// Register-immediate (also loads, stores and branches): `rd`, `rs1`,
    /// signed 14-bit immediate.
    I,
    /// Jump: signed 24-bit word offset.
    J,
    /// `sethi`: `rd`, signed 19-bit immediate shifted left by 14.
    S,
}

/// Cycle-cost category of an opcode; the [`crate::CostModel`] maps each
/// category to a cycle count.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CostClass {
    /// Simple integer ALU operation (add, logic, shift, compare, `sethi`).
    Alu,
    /// Integer multiply.
    Mul,
    /// Integer divide / remainder.
    Div,
    /// Floating add/sub/neg/mov/compare/convert.
    FAdd,
    /// Floating multiply.
    FMul,
    /// Floating divide.
    FDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch (taken branches cost one extra cycle).
    Branch,
    /// Unconditional jump.
    Jump,
    /// Call (`jal`/`jalr` with linkage).
    Call,
    /// Host call trap.
    HCall,
    /// No cost beyond issue.
    Nop,
}

macro_rules! ops {
    ($( $name:ident = $code:literal, $fmt:ident, $mnem:literal, $cost:ident; )*) => {
        /// Machine opcodes. See the module docs for encoding formats.
        #[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
        #[repr(u8)]
        pub enum Op {
            $(
                #[doc = concat!("`", $mnem, "`")]
                $name = $code,
            )*
        }

        impl Op {
            /// Decodes an opcode byte.
            ///
            /// # Errors
            ///
            /// Returns [`VmError::BadOpcode`] for unassigned byte values.
            pub fn from_u8(b: u8) -> Result<Op, VmError> {
                match b {
                    $( $code => Ok(Op::$name), )*
                    _ => Err(VmError::BadOpcode(b)),
                }
            }

            /// The instruction word format for this opcode.
            pub fn format(self) -> Format {
                match self {
                    $( Op::$name => Format::$fmt, )*
                }
            }

            /// Assembly mnemonic.
            pub fn mnemonic(self) -> &'static str {
                match self {
                    $( Op::$name => $mnem, )*
                }
            }

            /// Cycle-cost category.
            pub fn cost_class(self) -> CostClass {
                match self {
                    $( Op::$name => CostClass::$cost, )*
                }
            }

            /// All assigned opcodes, in encoding order.
            pub const ALL: &'static [Op] = &[ $( Op::$name, )* ];
        }
    };
}

ops! {
    // --- misc ---
    Nop    = 0,  I, "nop",    Nop;
    Halt   = 1,  I, "halt",   Nop;
    Hcall  = 2,  I, "hcall",  HCall;

    // --- 32-bit integer arithmetic (results sign-extended to 64 bits) ---
    Addw   = 8,  R, "addw",   Alu;
    Subw   = 9,  R, "subw",   Alu;
    Mulw   = 10, R, "mulw",   Mul;
    Divw   = 11, R, "divw",   Div;
    Divuw  = 12, R, "divuw",  Div;
    Remw   = 13, R, "remw",   Div;
    Remuw  = 14, R, "remuw",  Div;

    // --- 64-bit integer arithmetic ---
    Addd   = 16, R, "addd",   Alu;
    Subd   = 17, R, "subd",   Alu;
    Muld   = 18, R, "muld",   Mul;
    Divd   = 19, R, "divd",   Div;
    Divud  = 20, R, "divud",  Div;
    Remd   = 21, R, "remd",   Div;
    Remud  = 22, R, "remud",  Div;

    // --- bitwise logic (64-bit) ---
    And    = 24, R, "and",    Alu;
    Or     = 25, R, "or",     Alu;
    Xor    = 26, R, "xor",    Alu;

    // --- shifts ---
    Sllw   = 28, R, "sllw",   Alu;
    Srlw   = 29, R, "srlw",   Alu;
    Sraw   = 30, R, "sraw",   Alu;
    Slld   = 31, R, "slld",   Alu;
    Srld   = 32, R, "srld",   Alu;
    Srad   = 33, R, "srad",   Alu;

    // --- set-compare (rd <- 0/1) ---
    Seq    = 36, R, "seq",    Alu;
    Sne    = 37, R, "sne",    Alu;
    Sltw   = 38, R, "sltw",   Alu;
    Sltuw  = 39, R, "sltuw",  Alu;
    Sltd   = 40, R, "sltd",   Alu;
    Sltud  = 41, R, "sltud",  Alu;

    // --- register-immediate ---
    Addiw  = 48, I, "addiw",  Alu;
    Addid  = 49, I, "addid",  Alu;
    Andi   = 50, I, "andi",   Alu;
    Ori    = 51, I, "ori",    Alu;
    Xori   = 52, I, "xori",   Alu;
    Slliw  = 53, I, "slliw",  Alu;
    Srliw  = 54, I, "srliw",  Alu;
    Sraiw  = 55, I, "sraiw",  Alu;
    Sllid  = 56, I, "sllid",  Alu;
    Srlid  = 57, I, "srlid",  Alu;
    Sraid  = 58, I, "sraid",  Alu;
    Sethi  = 62, S, "sethi",  Alu;

    // --- loads (rd <- mem[rs1 + imm]) ---
    Lb     = 64, I, "lb",     Load;
    Lbu    = 65, I, "lbu",    Load;
    Lh     = 66, I, "lh",     Load;
    Lhu    = 67, I, "lhu",    Load;
    Lw     = 68, I, "lw",     Load;
    Lwu    = 69, I, "lwu",    Load;
    Ld     = 70, I, "ld",     Load;
    Fld    = 71, I, "fld",    Load;

    // --- stores (mem[rs1 + imm] <- rd) ---
    Sb     = 72, I, "sb",     Store;
    Sh     = 73, I, "sh",     Store;
    Sw     = 74, I, "sw",     Store;
    Sd     = 75, I, "sd",     Store;
    Fsd    = 76, I, "fsd",    Store;

    // --- branches (compare rd, rs1; imm = word offset from next insn) ---
    Beq    = 80, I, "beq",    Branch;
    Bne    = 81, I, "bne",    Branch;
    Bltw   = 82, I, "bltw",   Branch;
    Bgew   = 83, I, "bgew",   Branch;
    Bltuw  = 84, I, "bltuw",  Branch;
    Bgeuw  = 85, I, "bgeuw",  Branch;
    Bltd   = 86, I, "bltd",   Branch;
    Bged   = 87, I, "bged",   Branch;
    Bltud  = 88, I, "bltud",  Branch;
    Bgeud  = 89, I, "bgeud",  Branch;

    // --- jumps ---
    J      = 96, J, "j",      Jump;
    Jal    = 97, J, "jal",    Call;
    Jalr   = 98, R, "jalr",   Call;

    // --- floating point (f64) ---
    Fadd   = 104, R, "fadd",  FAdd;
    Fsub   = 105, R, "fsub",  FAdd;
    Fmul   = 106, R, "fmul",  FMul;
    Fdiv   = 107, R, "fdiv",  FDiv;
    Fneg   = 108, R, "fneg",  FAdd;
    Fmov   = 109, R, "fmov",  FAdd;
    Feq    = 112, R, "feq",   FAdd;
    Flt    = 113, R, "flt",   FAdd;
    Fle    = 114, R, "fle",   FAdd;
    Cvtwd  = 116, R, "cvtwd", FAdd;
    Cvtdw  = 117, R, "cvtdw", FAdd;
    Cvtld  = 118, R, "cvtld", FAdd;
    Cvtdl  = 119, R, "cvtdl", FAdd;
    Fmvdx  = 120, R, "fmvdx", FAdd;
    Fmvxd  = 121, R, "fmvxd", FAdd;
}

impl Op {
    /// True for the conditional branch opcodes.
    pub fn is_branch(self) -> bool {
        matches!(self.cost_class(), CostClass::Branch)
    }

    /// True for opcodes whose `rd` field names a floating point register.
    pub fn rd_is_float(self) -> bool {
        matches!(
            self,
            Op::Fld
                | Op::Fsd
                | Op::Fadd
                | Op::Fsub
                | Op::Fmul
                | Op::Fdiv
                | Op::Fneg
                | Op::Fmov
                | Op::Cvtwd
                | Op::Cvtld
                | Op::Fmvdx
        )
    }
}

/// Order-sensitive fold of the opcode table (count, discriminants,
/// mnemonics) — part of the persistent store's ABI salt. Any edit to
/// the `Op` enum (adding, removing, reordering, or renaming an opcode)
/// changes this signature, so sealed words serialized under one table
/// are never decoded under another.
pub fn op_table_signature() -> u64 {
    let mut h: u64 = Op::ALL.len() as u64;
    for &op in Op::ALL {
        h = h
            .rotate_left(13)
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(op as u64);
        for b in op.mnemonic().bytes() {
            h = h.rotate_left(7).wrapping_add(b as u64);
        }
    }
    h
}

/// Range of a signed 14-bit immediate: `-8192..=8191`.
pub const IMM14_MIN: i32 = -(1 << 13);
/// Maximum of a signed 14-bit immediate.
pub const IMM14_MAX: i32 = (1 << 13) - 1;
/// Range of a signed 19-bit `sethi` immediate.
pub const IMM19_MIN: i32 = -(1 << 18);
/// Maximum of a signed 19-bit `sethi` immediate.
pub const IMM19_MAX: i32 = (1 << 18) - 1;
/// Range of a signed 24-bit jump offset.
pub const IMM24_MIN: i32 = -(1 << 23);
/// Maximum of a signed 24-bit jump offset.
pub const IMM24_MAX: i32 = (1 << 23) - 1;

/// Returns true if `v` fits in a signed 14-bit immediate.
pub fn fits_imm14(v: i64) -> bool {
    (IMM14_MIN as i64..=IMM14_MAX as i64).contains(&v)
}

/// A decoded (or not-yet-encoded) instruction.
///
/// Register fields are raw 5-bit values so the same structure carries
/// integer and floating point register names; use [`Insn::r`], [`Insn::i`],
/// and friends to construct well-formed instructions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Insn {
    /// Opcode.
    pub op: Op,
    /// Destination register field (source for stores).
    pub rd: u8,
    /// First source register field.
    pub rs1: u8,
    /// Second source register field (R-format only).
    pub rs2: u8,
    /// Immediate (I: 14-bit, J: 24-bit, S: 19-bit; sign-extended).
    pub imm: i32,
}

impl Insn {
    /// Builds an R-format instruction over integer registers.
    pub fn r(op: Op, rd: Reg, rs1: Reg, rs2: Reg) -> Insn {
        debug_assert_eq!(op.format(), Format::R);
        Insn {
            op,
            rd: rd.0,
            rs1: rs1.0,
            rs2: rs2.0,
            imm: 0,
        }
    }

    /// Builds an I-format instruction (`rd <- op(rs1, imm)`, or a
    /// load/store/branch).
    ///
    /// # Panics
    ///
    /// Debug-asserts that `imm` fits in 14 signed bits.
    pub fn i(op: Op, rd: Reg, rs1: Reg, imm: i32) -> Insn {
        debug_assert_eq!(op.format(), Format::I);
        let ok = match op {
            // Logical immediates are unsigned 14-bit; shifts take 0..=63.
            Op::Andi | Op::Ori | Op::Xori => (0..=0x3fff).contains(&imm),
            Op::Slliw | Op::Srliw | Op::Sraiw => (0..32).contains(&imm),
            Op::Sllid | Op::Srlid | Op::Sraid => (0..64).contains(&imm),
            _ => (IMM14_MIN..=IMM14_MAX).contains(&imm),
        };
        debug_assert!(ok, "immediate out of range for {op:?}: {imm}");
        Insn {
            op,
            rd: rd.0,
            rs1: rs1.0,
            rs2: 0,
            imm,
        }
    }

    /// Builds a J-format instruction with a word offset.
    pub fn j(op: Op, offset: i32) -> Insn {
        debug_assert_eq!(op.format(), Format::J);
        debug_assert!((IMM24_MIN..=IMM24_MAX).contains(&offset));
        Insn {
            op,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: offset,
        }
    }

    /// Builds `sethi rd, imm` (`rd <- imm << 14`).
    pub fn sethi(rd: Reg, imm: i32) -> Insn {
        debug_assert!((IMM19_MIN..=IMM19_MAX).contains(&imm));
        Insn {
            op: Op::Sethi,
            rd: rd.0,
            rs1: 0,
            rs2: 0,
            imm,
        }
    }

    /// A floating point R-format instruction (`fd <- op(fs1, fs2)`).
    pub fn fr(op: Op, fd: FReg, fs1: FReg, fs2: FReg) -> Insn {
        debug_assert_eq!(op.format(), Format::R);
        Insn {
            op,
            rd: fd.0,
            rs1: fs1.0,
            rs2: fs2.0,
            imm: 0,
        }
    }

    /// A floating point load/store: `fld fd, [rs1+imm]` / `fsd fd, [rs1+imm]`.
    pub fn fmem(op: Op, fd: FReg, rs1: Reg, imm: i32) -> Insn {
        debug_assert!(matches!(op, Op::Fld | Op::Fsd));
        Insn {
            op,
            rd: fd.0,
            rs1: rs1.0,
            rs2: 0,
            imm,
        }
    }

    /// `ret` — `jalr r0, ra` (jump to the link register without linking).
    pub fn ret() -> Insn {
        Insn {
            op: Op::Jalr,
            rd: 0,
            rs1: crate::regs::RA.0,
            rs2: 0,
            imm: 0,
        }
    }

    /// `nop`.
    pub fn nop() -> Insn {
        Insn {
            op: Op::Nop,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        }
    }

    /// Encodes into a 32-bit instruction word.
    pub fn encode(&self) -> u32 {
        let op = (self.op as u32) << 24;
        match self.op.format() {
            Format::R => {
                op | ((self.rd as u32 & 0x1f) << 19)
                    | ((self.rs1 as u32 & 0x1f) << 14)
                    | ((self.rs2 as u32 & 0x1f) << 9)
            }
            Format::I => {
                op | ((self.rd as u32 & 0x1f) << 19)
                    | ((self.rs1 as u32 & 0x1f) << 14)
                    | (self.imm as u32 & 0x3fff)
            }
            Format::J => op | (self.imm as u32 & 0xff_ffff),
            Format::S => op | ((self.rd as u32 & 0x1f) << 19) | (self.imm as u32 & 0x7_ffff),
        }
    }

    /// Decodes a 32-bit instruction word.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadOpcode`] if the opcode byte is unassigned.
    pub fn decode(word: u32) -> Result<Insn, VmError> {
        let op = Op::from_u8((word >> 24) as u8)?;
        let insn = match op.format() {
            Format::R => Insn {
                op,
                rd: ((word >> 19) & 0x1f) as u8,
                rs1: ((word >> 14) & 0x1f) as u8,
                rs2: ((word >> 9) & 0x1f) as u8,
                imm: 0,
            },
            Format::I => Insn {
                op,
                rd: ((word >> 19) & 0x1f) as u8,
                rs1: ((word >> 14) & 0x1f) as u8,
                rs2: 0,
                imm: sign_extend(word & 0x3fff, 14),
            },
            Format::J => Insn {
                op,
                rd: 0,
                rs1: 0,
                rs2: 0,
                imm: sign_extend(word & 0xff_ffff, 24),
            },
            Format::S => Insn {
                op,
                rd: ((word >> 19) & 0x1f) as u8,
                rs1: 0,
                rs2: 0,
                imm: sign_extend(word & 0x7_ffff, 19),
            },
        };
        Ok(insn)
    }
}

fn sign_extend(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op {
            Op::Nop | Op::Halt => write!(f, "{m}"),
            Op::Hcall => write!(f, "{m} {}", self.imm),
            Op::Sethi => write!(f, "{m} r{}, {:#x}", self.rd, self.imm),
            Op::J | Op::Jal => write!(f, "{m} {:+}", self.imm),
            Op::Jalr => write!(f, "{m} r{}, r{}", self.rd, self.rs1),
            Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Lwu | Op::Ld => {
                write!(f, "{m} r{}, [r{}{:+}]", self.rd, self.rs1, self.imm)
            }
            Op::Fld => write!(f, "{m} f{}, [r{}{:+}]", self.rd, self.rs1, self.imm),
            Op::Sb | Op::Sh | Op::Sw | Op::Sd => {
                write!(f, "{m} r{}, [r{}{:+}]", self.rd, self.rs1, self.imm)
            }
            Op::Fsd => write!(f, "{m} f{}, [r{}{:+}]", self.rd, self.rs1, self.imm),
            _ if self.op.is_branch() => {
                write!(f, "{m} r{}, r{}, {:+}", self.rd, self.rs1, self.imm)
            }
            Op::Fadd | Op::Fsub | Op::Fmul | Op::Fdiv => {
                write!(f, "{m} f{}, f{}, f{}", self.rd, self.rs1, self.rs2)
            }
            Op::Fneg | Op::Fmov => write!(f, "{m} f{}, f{}", self.rd, self.rs1),
            Op::Feq | Op::Flt | Op::Fle => {
                write!(f, "{m} r{}, f{}, f{}", self.rd, self.rs1, self.rs2)
            }
            Op::Cvtwd | Op::Cvtld => write!(f, "{m} f{}, r{}", self.rd, self.rs1),
            Op::Cvtdw | Op::Cvtdl => write!(f, "{m} r{}, f{}", self.rd, self.rs1),
            Op::Fmvdx => write!(f, "{m} f{}, r{}", self.rd, self.rs1),
            Op::Fmvxd => write!(f, "{m} r{}, f{}", self.rd, self.rs1),
            _ => match self.op.format() {
                Format::R => {
                    write!(f, "{m} r{}, r{}, r{}", self.rd, self.rs1, self.rs2)
                }
                _ => write!(f, "{m} r{}, r{}, {}", self.rd, self.rs1, self.imm),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{A0, A1, A2, RA, ZERO};

    #[test]
    fn opcode_bytes_round_trip() {
        for &op in Op::ALL {
            assert_eq!(Op::from_u8(op as u8).unwrap(), op);
        }
    }

    #[test]
    fn unassigned_opcode_rejected() {
        assert!(matches!(Op::from_u8(255), Err(VmError::BadOpcode(255))));
        assert!(matches!(Op::from_u8(3), Err(VmError::BadOpcode(3))));
    }

    #[test]
    fn r_format_round_trip() {
        let i = Insn::r(Op::Addw, A0, A1, A2);
        let d = Insn::decode(i.encode()).unwrap();
        assert_eq!(i, d);
    }

    #[test]
    fn i_format_round_trip_negative_imm() {
        let i = Insn::i(Op::Addiw, A0, A1, -8192);
        assert_eq!(Insn::decode(i.encode()).unwrap(), i);
        let i = Insn::i(Op::Lw, A0, A1, 8191);
        assert_eq!(Insn::decode(i.encode()).unwrap(), i);
    }

    #[test]
    fn j_format_round_trip() {
        for off in [-(1 << 23), -1, 0, 1, (1 << 23) - 1] {
            let i = Insn::j(Op::Jal, off);
            assert_eq!(Insn::decode(i.encode()).unwrap(), i);
        }
    }

    #[test]
    fn sethi_round_trip() {
        for imm in [IMM19_MIN, -1, 0, 1, IMM19_MAX] {
            let i = Insn::sethi(A0, imm);
            assert_eq!(Insn::decode(i.encode()).unwrap(), i);
        }
    }

    #[test]
    fn ret_is_jalr_zero_ra() {
        let r = Insn::ret();
        assert_eq!(r.op, Op::Jalr);
        assert_eq!(r.rd, ZERO.0);
        assert_eq!(r.rs1, RA.0);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Insn::i(Op::Addiw, A0, A1, 5).to_string(), "addiw r4, r5, 5");
        assert_eq!(Insn::i(Op::Lw, A0, A1, -8).to_string(), "lw r4, [r5-8]");
        assert_eq!(Insn::i(Op::Beq, A0, A1, 3).to_string(), "beq r4, r5, +3");
        assert_eq!(Insn::ret().to_string(), "jalr r0, r1");
    }

    #[test]
    fn fits_imm14_bounds() {
        assert!(fits_imm14(-8192));
        assert!(fits_imm14(8191));
        assert!(!fits_imm14(8192));
        assert!(!fits_imm14(-8193));
    }

    #[test]
    fn float_field_classification() {
        assert!(Op::Fld.rd_is_float());
        assert!(Op::Fsd.rd_is_float());
        assert!(!Op::Fmvxd.rd_is_float());
        assert!(Op::Fmvdx.rd_is_float());
        assert!(!Op::Lw.rd_is_float());
    }
}
