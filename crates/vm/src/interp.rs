//! The interpreter: decodes and executes binary code, counting cycles.
//!
//! Execution is fully deterministic. Every executed instruction is charged
//! cycles from the [`CostModel`]; taken branches pay an extra cycle. A
//! fuel limit bounds runaway loops.

use crate::code::{CodeSpace, CODE_BASE};
use crate::cost::CostModel;
use crate::error::VmError;
use crate::host::{HostCall, NoHost};
use crate::isa::{Insn, Op};
use crate::mem::Memory;
use crate::predecode::{ExecEngine, ExecStats, TransCache};
use crate::regs::{ARG_REGS, FARG_REGS, RA, SP};

/// Program-counter value that terminates execution when returned to; the
/// interpreter seeds `ra` with it before calling a function.
pub const RETURN_SENTINEL: u64 = CODE_BASE - 16;

/// How a run ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExitStatus {
    /// Control returned through the sentinel link address.
    Returned,
    /// A `halt` instruction executed.
    Halted,
}

/// Registers, memory, code and counters — everything a [`HostCall`]
/// handler may touch.
#[derive(Clone, Debug)]
pub struct MachineState {
    /// Integer register file. Index 0 reads as zero (enforced on write).
    pub regs: [u64; 32],
    /// Floating point register file.
    pub fregs: [f64; 16],
    /// Data memory.
    pub mem: Memory,
    /// Code space (host calls may append functions — `compile` does).
    pub code: CodeSpace,
    /// Cycles consumed since the last counter reset.
    pub cycles: u64,
    /// Instructions executed since the last counter reset.
    pub insns: u64,
    /// Host-call traps taken since the last counter reset.
    pub hcalls: u64,
}

impl MachineState {
    /// Reads integer register `i` (0 reads zero).
    #[inline]
    pub fn reg(&self, i: u8) -> u64 {
        self.regs[i as usize]
    }

    /// Writes integer register `i`; writes to register 0 are discarded.
    #[inline]
    pub fn set_reg(&mut self, i: u8, v: u64) {
        if i != 0 {
            self.regs[i as usize] = v;
        }
    }

    /// Reads the `n`-th integer argument register.
    pub fn arg(&self, n: usize) -> u64 {
        self.regs[ARG_REGS[n].0 as usize]
    }

    /// Reads the `n`-th floating point argument register.
    pub fn farg(&self, n: usize) -> f64 {
        self.fregs[FARG_REGS[n].0 as usize]
    }

    /// Sets the integer return value (`a0`).
    pub fn set_ret(&mut self, v: u64) {
        self.regs[ARG_REGS[0].0 as usize] = v;
    }

    /// Sets the floating point return value (`fa0`).
    pub fn set_fret(&mut self, v: f64) {
        self.fregs[FARG_REGS[0].0 as usize] = v;
    }
}

/// A virtual machine instance: code + data memory + a host.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct Vm<H = NoHost> {
    pub(crate) state: MachineState,
    pub(crate) host: H,
    pub(crate) cost: CostModel,
    pub(crate) fuel: u64,
    pub(crate) engine: ExecEngine,
    pub(crate) trans: TransCache<H>,
}

impl Vm<NoHost> {
    /// Creates a machine over `code` with `mem_size` bytes of data memory
    /// and no host calls.
    pub fn new(code: CodeSpace, mem_size: usize) -> Vm<NoHost> {
        Vm::with_host(code, mem_size, NoHost)
    }
}

impl<H: HostCall> Vm<H> {
    /// Creates a machine with a [`HostCall`] handler.
    pub fn with_host(code: CodeSpace, mem_size: usize, host: H) -> Vm<H> {
        Vm::from_parts(code, Memory::new(mem_size), host)
    }

    /// Creates a machine over an existing memory image (used by loaders
    /// that have already placed globals).
    pub fn from_parts(code: CodeSpace, mem: Memory, host: H) -> Vm<H> {
        let trans = TransCache::with_epoch(code.live_epoch());
        Vm {
            state: MachineState {
                regs: [0; 32],
                fregs: [0.0; 16],
                mem,
                code,
                cycles: 0,
                insns: 0,
                hcalls: 0,
            },
            host,
            cost: CostModel::default(),
            fuel: u64::MAX,
            engine: ExecEngine::default(),
            trans,
        }
    }

    /// Replaces the cycle cost model. Drops the translation cache:
    /// decoded buffers bake per-instruction costs in.
    pub fn set_cost_model(&mut self, cost: CostModel) {
        self.cost = cost;
        self.trans.clear();
    }

    /// Selects the execution engine (decode-per-step, predecoded,
    /// threaded, or adaptive). Drops the translation cache and any
    /// adaptive tier state: decoded buffers depend on the engine's
    /// fusion setting, and tier clocks restart with the engine.
    pub fn set_engine(&mut self, engine: ExecEngine) {
        self.engine = engine;
        self.trans.clear();
    }

    /// The active execution engine.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Execution-engine counters: translations performed, fused pairs,
    /// and how instructions were dispatched.
    pub fn exec_stats(&self) -> ExecStats {
        self.trans.stats
    }

    /// The active cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// Sets the cycle budget; [`VmError::OutOfFuel`] is raised once
    /// cumulative cycles exceed it.
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Machine state (registers, memory, code, counters).
    pub fn state(&self) -> &MachineState {
        &self.state
    }

    /// Mutable machine state, for workload setup and result inspection.
    pub fn state_mut(&mut self) -> &mut MachineState {
        &mut self.state
    }

    /// The host handler.
    pub fn host(&self) -> &H {
        &self.host
    }

    /// Mutable access to the host handler.
    pub fn host_mut(&mut self) -> &mut H {
        &mut self.host
    }

    /// Zeroes the cycle, instruction, and host-call counters.
    pub fn reset_counters(&mut self) {
        self.state.cycles = 0;
        self.state.insns = 0;
        self.state.hcalls = 0;
    }

    /// Cycles consumed since the last reset.
    pub fn cycles(&self) -> u64 {
        self.state.cycles
    }

    /// Instructions executed since the last reset.
    pub fn insns(&self) -> u64 {
        self.state.insns
    }

    /// Host-call traps taken since the last reset.
    pub fn hcalls(&self) -> u64 {
        self.state.hcalls
    }

    /// Calls the function at `addr` with integer arguments, returning
    /// `a0` on return.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised during execution.
    pub fn call(&mut self, addr: u64, args: &[u64]) -> Result<u64, VmError> {
        self.call_with(addr, args, &[]).map(|(v, _)| v)
    }

    /// Calls the function at `addr`, returning the floating point result.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised during execution.
    pub fn call_f(&mut self, addr: u64, args: &[u64], fargs: &[f64]) -> Result<f64, VmError> {
        self.call_with(addr, args, fargs).map(|(_, f)| f)
    }

    /// Calls the function at `addr` with integer and floating point
    /// arguments; returns `(a0, fa0)`.
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised during execution.
    ///
    /// # Panics
    ///
    /// Panics if more than 6 integer or 4 floating point arguments are
    /// passed (stack arguments are not part of this ABI).
    pub fn call_with(
        &mut self,
        addr: u64,
        args: &[u64],
        fargs: &[f64],
    ) -> Result<(u64, f64), VmError> {
        assert!(args.len() <= ARG_REGS.len(), "too many integer args");
        assert!(fargs.len() <= FARG_REGS.len(), "too many fp args");
        let st = &mut self.state;
        st.set_reg(SP.0, st.mem.stack_top());
        st.set_reg(RA.0, RETURN_SENTINEL);
        for (i, &a) in args.iter().enumerate() {
            st.set_reg(ARG_REGS[i].0, a);
        }
        for (i, &a) in fargs.iter().enumerate() {
            st.fregs[FARG_REGS[i].0 as usize] = a;
        }
        self.run(addr)?;
        Ok((self.state.arg(0), self.state.farg(0)))
    }

    /// Runs from `pc` until the sentinel return address or `halt`,
    /// dispatching through the configured [`ExecEngine`].
    ///
    /// # Errors
    ///
    /// Any [`VmError`] raised during execution.
    pub fn run(&mut self, pc: u64) -> Result<ExitStatus, VmError> {
        match self.engine {
            ExecEngine::DecodePerStep => self.run_decode_per_step(pc),
            ExecEngine::Predecoded { fuse } => self.run_predecoded(pc, fuse),
            ExecEngine::Threaded => self.run_threaded(pc),
            ExecEngine::Adaptive {
                fuse_after,
                thread_after,
                background,
            } => self.run_adaptive(pc, fuse_after, thread_after, background),
        }
    }

    /// The reference engine: fetch, bounds+liveness check, decode, cost
    /// lookup, execute — on every single instruction.
    fn run_decode_per_step(&mut self, mut pc: u64) -> Result<ExitStatus, VmError> {
        loop {
            if pc == RETURN_SENTINEL {
                return Ok(ExitStatus::Returned);
            }
            let step = self.step_slow(pc)?;
            self.trans.stats.slow_insns += 1;
            match step {
                Step::At(next) => pc = next,
                Step::Done(status) => return Ok(status),
            }
        }
    }

    /// One instruction of the reference engine. The predecoded engine
    /// falls back to this at region boundaries so every fault
    /// (`BadPc`, `StaleCode`, `BadOpcode`, ...) is raised by the exact
    /// same code on both paths.
    #[inline]
    pub(crate) fn step_slow(&mut self, pc: u64) -> Result<Step, VmError> {
        let word = self.state.code.fetch_exec(pc)?;
        let insn = Insn::decode(word)?;
        let mut cost = self.cost.cost(insn.op);
        let mut next = pc + 4;
        match self.exec(&insn, pc)? {
            Flow::Next => {}
            Flow::Jump(target) => next = target,
            Flow::Taken(target) => {
                next = target;
                cost += self.cost.branch_taken_extra;
            }
            Flow::Halt => {
                self.state.cycles += cost;
                self.state.insns += 1;
                return Ok(Step::Done(ExitStatus::Halted));
            }
        }
        self.state.cycles += cost;
        self.state.insns += 1;
        if self.state.cycles > self.fuel {
            return Err(VmError::OutOfFuel);
        }
        Ok(Step::At(next))
    }

    #[inline]
    fn exec(&mut self, insn: &Insn, pc: u64) -> Result<Flow, VmError> {
        use Op::*;
        match insn.op {
            Halt => Ok(Flow::Halt),
            Hcall => {
                self.state.hcalls += 1;
                self.host.call(insn.imm as u32, &mut self.state)?;
                Ok(Flow::Next)
            }
            Beq | Bne | Bltw | Bgew | Bltuw | Bgeuw | Bltd | Bged | Bltud | Bgeud => {
                let x = self.state.reg(insn.rd);
                let y = self.state.reg(insn.rs1);
                if branch_taken(insn.op, x, y) {
                    Ok(Flow::Taken(branch_target(pc, insn.imm)))
                } else {
                    Ok(Flow::Next)
                }
            }
            J => Ok(Flow::Jump(branch_target(pc, insn.imm))),
            Jal => {
                self.state.set_reg(RA.0, pc + 4);
                Ok(Flow::Jump(branch_target(pc, insn.imm)))
            }
            Jalr => {
                let target = self.state.reg(insn.rs1);
                self.state.set_reg(insn.rd, pc + 4);
                Ok(Flow::Jump(target))
            }
            _ => {
                exec_scalar(
                    &mut self.state,
                    insn.op,
                    insn.rd,
                    insn.rs1,
                    insn.rs2,
                    insn.imm,
                )?;
                Ok(Flow::Next)
            }
        }
    }
}

/// Executes one straight-line (non-control, non-trapping-to-host)
/// instruction against the machine state. Both engines funnel through
/// this function, so operational semantics exist in exactly one place.
#[inline]
pub(crate) fn exec_scalar(
    st: &mut MachineState,
    op: Op,
    rd: u8,
    rs1: u8,
    rs2: u8,
    imm: i32,
) -> Result<(), VmError> {
    use Op::*;
    let a = st.reg(rs1);
    let b = st.reg(rs2);
    let aw = a as i32;
    let bw = b as i32;
    macro_rules! setw {
        ($v:expr) => {{
            let v: i32 = $v;
            st.set_reg(rd, v as i64 as u64);
        }};
    }
    macro_rules! setd {
        ($v:expr) => {
            st.set_reg(rd, $v as u64)
        };
    }
    match op {
        Nop => {}

        Addw => setw!(aw.wrapping_add(bw)),
        Subw => setw!(aw.wrapping_sub(bw)),
        Mulw => setw!(aw.wrapping_mul(bw)),
        Divw => {
            if bw == 0 {
                return Err(VmError::DivideByZero);
            }
            setw!(aw.wrapping_div(bw));
        }
        Divuw => {
            if bw == 0 {
                return Err(VmError::DivideByZero);
            }
            setw!(((aw as u32) / (bw as u32)) as i32);
        }
        Remw => {
            if bw == 0 {
                return Err(VmError::DivideByZero);
            }
            setw!(aw.wrapping_rem(bw));
        }
        Remuw => {
            if bw == 0 {
                return Err(VmError::DivideByZero);
            }
            setw!(((aw as u32) % (bw as u32)) as i32);
        }

        Addd => setd!(a.wrapping_add(b)),
        Subd => setd!(a.wrapping_sub(b)),
        Muld => setd!(a.wrapping_mul(b)),
        Divd => {
            if b == 0 {
                return Err(VmError::DivideByZero);
            }
            setd!((a as i64).wrapping_div(b as i64));
        }
        Divud => {
            if b == 0 {
                return Err(VmError::DivideByZero);
            }
            setd!(a / b);
        }
        Remd => {
            if b == 0 {
                return Err(VmError::DivideByZero);
            }
            setd!((a as i64).wrapping_rem(b as i64));
        }
        Remud => {
            if b == 0 {
                return Err(VmError::DivideByZero);
            }
            setd!(a % b);
        }

        And => setd!(a & b),
        Or => setd!(a | b),
        Xor => setd!(a ^ b),

        Sllw => setw!(aw.wrapping_shl(b as u32 & 31)),
        Srlw => setw!(((aw as u32) >> (b as u32 & 31)) as i32),
        Sraw => setw!(aw >> (b as u32 & 31)),
        Slld => setd!(a.wrapping_shl(b as u32 & 63)),
        Srld => setd!(a >> (b & 63)),
        Srad => setd!(((a as i64) >> (b & 63)) as u64),

        Seq => setd!(u64::from(a == b)),
        Sne => setd!(u64::from(a != b)),
        Sltw => setd!(u64::from(aw < bw)),
        Sltuw => setd!(u64::from((aw as u32) < (bw as u32))),
        Sltd => setd!(u64::from((a as i64) < (b as i64))),
        Sltud => setd!(u64::from(a < b)),

        Addiw => setw!(aw.wrapping_add(imm)),
        Addid => setd!(a.wrapping_add(imm as i64 as u64)),
        Andi => setd!(a & (imm as u32 as u64 & 0x3fff)),
        Ori => setd!(a | (imm as u32 as u64 & 0x3fff)),
        Xori => setd!(a ^ (imm as u32 as u64 & 0x3fff)),
        Slliw => setw!(aw.wrapping_shl(imm as u32 & 31)),
        Srliw => setw!(((aw as u32) >> (imm as u32 & 31)) as i32),
        Sraiw => setw!(aw >> (imm as u32 & 31)),
        Sllid => setd!(a.wrapping_shl(imm as u32 & 63)),
        Srlid => setd!(a >> (imm as u64 & 63)),
        Sraid => setd!(((a as i64) >> (imm as u64 & 63)) as u64),
        Sethi => setd!(((imm as i64) << 14) as u64),

        Lb => {
            let v = st.mem.load_u8(ea(a, imm))? as i8;
            setd!(v as i64 as u64);
        }
        Lbu => {
            let v = st.mem.load_u8(ea(a, imm))?;
            setd!(v as u64);
        }
        Lh => {
            let v = st.mem.load_u16(ea(a, imm))? as i16;
            setd!(v as i64 as u64);
        }
        Lhu => {
            let v = st.mem.load_u16(ea(a, imm))?;
            setd!(v as u64);
        }
        Lw => {
            let v = st.mem.load_u32(ea(a, imm))? as i32;
            setd!(v as i64 as u64);
        }
        Lwu => {
            let v = st.mem.load_u32(ea(a, imm))?;
            setd!(v as u64);
        }
        Ld => {
            let v = st.mem.load_u64(ea(a, imm))?;
            setd!(v);
        }
        Fld => {
            let v = st.mem.load_f64(ea(a, imm))?;
            st.fregs[rd as usize & 15] = v;
        }

        Sb => st.mem.store_u8(ea(a, imm), st.reg(rd) as u8)?,
        Sh => st.mem.store_u16(ea(a, imm), st.reg(rd) as u16)?,
        Sw => st.mem.store_u32(ea(a, imm), st.reg(rd) as u32)?,
        Sd => st.mem.store_u64(ea(a, imm), st.reg(rd))?,
        Fsd => st.mem.store_f64(ea(a, imm), st.fregs[rd as usize & 15])?,

        Fadd => {
            st.fregs[rd as usize & 15] = st.fregs[rs1 as usize & 15] + st.fregs[rs2 as usize & 15];
        }
        Fsub => {
            st.fregs[rd as usize & 15] = st.fregs[rs1 as usize & 15] - st.fregs[rs2 as usize & 15];
        }
        Fmul => {
            st.fregs[rd as usize & 15] = st.fregs[rs1 as usize & 15] * st.fregs[rs2 as usize & 15];
        }
        Fdiv => {
            st.fregs[rd as usize & 15] = st.fregs[rs1 as usize & 15] / st.fregs[rs2 as usize & 15];
        }
        Fneg => st.fregs[rd as usize & 15] = -st.fregs[rs1 as usize & 15],
        Fmov => st.fregs[rd as usize & 15] = st.fregs[rs1 as usize & 15],
        Feq => setd!(u64::from(
            st.fregs[rs1 as usize & 15] == st.fregs[rs2 as usize & 15]
        )),
        Flt => setd!(u64::from(
            st.fregs[rs1 as usize & 15] < st.fregs[rs2 as usize & 15]
        )),
        Fle => setd!(u64::from(
            st.fregs[rs1 as usize & 15] <= st.fregs[rs2 as usize & 15]
        )),
        Cvtwd => st.fregs[rd as usize & 15] = aw as f64,
        Cvtdw => setw!(st.fregs[rs1 as usize & 15] as i32),
        Cvtld => st.fregs[rd as usize & 15] = (a as i64) as f64,
        Cvtdl => setd!((st.fregs[rs1 as usize & 15] as i64) as u64),
        Fmvdx => st.fregs[rd as usize & 15] = f64::from_bits(a),
        Fmvxd => setd!(st.fregs[rs1 as usize & 15].to_bits()),

        Halt | Hcall | Beq | Bne | Bltw | Bgew | Bltuw | Bgeuw | Bltd | Bged | Bltud | Bgeud
        | J | Jal | Jalr => unreachable!("control instruction {op:?} in exec_scalar"),
    }
    Ok(())
}

/// Evaluates a conditional branch's comparison: `x` is the `rd` field's
/// register value, `y` the `rs1` field's.
#[inline]
pub(crate) fn branch_taken(op: Op, x: u64, y: u64) -> bool {
    match op {
        Op::Beq => x == y,
        Op::Bne => x != y,
        Op::Bltw => (x as i32) < (y as i32),
        Op::Bgew => (x as i32) >= (y as i32),
        Op::Bltuw => (x as u32) < (y as u32),
        Op::Bgeuw => (x as u32) >= (y as u32),
        Op::Bltd => (x as i64) < (y as i64),
        Op::Bged => (x as i64) >= (y as i64),
        Op::Bltud => x < y,
        Op::Bgeud => x >= y,
        _ => unreachable!("not a branch: {op:?}"),
    }
}

#[inline]
fn ea(base: u64, offset: i32) -> u64 {
    base.wrapping_add(offset as i64 as u64)
}

#[inline]
pub(crate) fn branch_target(pc: u64, word_offset: i32) -> u64 {
    (pc + 4).wrapping_add((word_offset as i64 * 4) as u64)
}

enum Flow {
    Next,
    Jump(u64),
    Taken(u64),
    Halt,
}

/// Where a (partial) run left off: continue at a pc, or finished.
pub(crate) enum Step {
    At(u64),
    Done(ExitStatus),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regs::{A0, A1, AT0, ZERO};

    fn run1(insns: &[Insn], args: &[u64]) -> Result<u64, VmError> {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("t");
        for &i in insns {
            cs.push(i);
        }
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.call(addr, args)
    }

    #[test]
    fn addw_wraps_and_sign_extends() {
        let got = run1(&[Insn::r(Op::Addw, A0, A0, A1)], &[i32::MAX as u64, 1]).unwrap();
        assert_eq!(got as i64, i32::MIN as i64);
    }

    #[test]
    fn addd_is_64_bit() {
        let got = run1(&[Insn::r(Op::Addd, A0, A0, A1)], &[1 << 40, 1]).unwrap();
        assert_eq!(got, (1 << 40) + 1);
    }

    #[test]
    fn division_semantics() {
        assert_eq!(
            run1(&[Insn::r(Op::Divw, A0, A0, A1)], &[(-7i64) as u64, 2]).unwrap() as i64,
            -3
        );
        assert_eq!(
            run1(&[Insn::r(Op::Remw, A0, A0, A1)], &[(-7i64) as u64, 2]).unwrap() as i64,
            -1
        );
        assert_eq!(
            run1(
                &[Insn::r(Op::Divuw, A0, A0, A1)],
                &[(-2i32) as u32 as u64, 2]
            )
            .unwrap(),
            (((-2i32) as u32) / 2) as i32 as i64 as u64
        );
        assert_eq!(
            run1(&[Insn::r(Op::Divw, A0, A0, A1)], &[1, 0]),
            Err(VmError::DivideByZero)
        );
    }

    #[test]
    fn zero_register_is_immutable() {
        let got = run1(
            &[
                Insn::i(Op::Addiw, ZERO, ZERO, 55),
                Insn::r(Op::Addw, A0, ZERO, ZERO),
            ],
            &[99],
        )
        .unwrap();
        assert_eq!(got, 0);
    }

    #[test]
    fn sethi_ori_synthesizes_32_bit_constants() {
        for v in [0x1234_5678i32, -1, i32::MIN, i32::MAX, 0x4000] {
            let hi = v >> 14;
            let lo = v & 0x3fff;
            let got = run1(&[Insn::sethi(A0, hi), Insn::i(Op::Ori, A0, A0, lo)], &[0]).unwrap();
            assert_eq!(got as i64, v as i64, "value {v:#x}");
        }
    }

    #[test]
    fn unsigned_compare_uses_low_32_bits() {
        // -1 (sign-extended) as u32 is u32::MAX, so 1 <u -1 in 32-bit.
        let got = run1(&[Insn::r(Op::Sltuw, A0, A0, A1)], &[1, (-1i64) as u64]).unwrap();
        assert_eq!(got, 1);
        // but NOT as a 64-bit unsigned compare of the sign-extended forms.
        let got = run1(&[Insn::r(Op::Sltud, A0, A0, A1)], &[1, (-1i64) as u64]).unwrap();
        assert_eq!(got, 1); // 1 < 0xffff...ffff
    }

    #[test]
    fn branch_skips_and_counts_taken_penalty() {
        // if (a0 == a1) a0 = 7; else a0 = 9;
        let insns = [
            Insn::i(Op::Beq, A0, A1, 2),
            Insn::i(Op::Addiw, A0, ZERO, 9),
            Insn::j(Op::J, 1),
            Insn::i(Op::Addiw, A0, ZERO, 7),
        ];
        assert_eq!(run1(&insns, &[5, 5]).unwrap(), 7);
        assert_eq!(run1(&insns, &[5, 6]).unwrap(), 9);
    }

    #[test]
    fn call_and_return_through_jal() {
        let mut cs = CodeSpace::new();
        // callee: a0 += 1; ret
        let callee = cs.begin_function("callee");
        cs.push(Insn::i(Op::Addiw, A0, A0, 1));
        cs.push(Insn::ret());
        let callee_addr = cs.finish_function(callee).unwrap();
        // caller: save ra on stack, jal callee, restore, a0 += 10, ret
        let caller = cs.begin_function("caller");
        cs.push(Insn::i(Op::Addid, SP, SP, -16));
        cs.push(Insn::i(Op::Sd, RA, SP, 0));
        let jal_at = cs.next_index();
        let callee_word = ((callee_addr - CODE_BASE) / 4) as i32;
        cs.push(Insn::j(Op::Jal, callee_word - (jal_at as i32 + 1)));
        cs.push(Insn::i(Op::Ld, RA, SP, 0));
        cs.push(Insn::i(Op::Addid, SP, SP, 16));
        cs.push(Insn::i(Op::Addiw, A0, A0, 10));
        cs.push(Insn::ret());
        let caller_addr = cs.finish_function(caller).unwrap();

        let mut vm = Vm::new(cs, 1 << 20);
        assert_eq!(vm.call(caller_addr, &[100]).unwrap(), 111);
    }

    #[test]
    fn loads_and_stores_round_trip_through_memory() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        // mem[a1] = a0 (word); a0 = sign-extended reload
        cs.push(Insn::i(Op::Sw, A0, A1, 0));
        cs.push(Insn::i(Op::Lw, A0, A1, 0));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        let buf = vm.state_mut().mem.alloc(8, 8).unwrap();
        let got = vm.call(addr, &[(-5i64) as u64, buf]).unwrap();
        assert_eq!(got as i64, -5);
    }

    #[test]
    fn float_ops() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        use crate::regs::{FA0, FA1};
        cs.push(Insn::fr(Op::Fmul, FA0, FA0, FA1));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        let got = vm.call_f(addr, &[], &[1.5, 4.0]).unwrap();
        assert_eq!(got, 6.0);
    }

    #[test]
    fn cvt_between_int_and_double() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        use crate::regs::FA0;
        cs.push(Insn {
            op: Op::Cvtwd,
            rd: FA0.0,
            rs1: A0.0,
            rs2: 0,
            imm: 0,
        });
        cs.push(Insn::fr(Op::Fadd, FA0, FA0, FA0));
        cs.push(Insn {
            op: Op::Cvtdw,
            rd: A0.0,
            rs1: FA0.0,
            rs2: 0,
            imm: 0,
        });
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        assert_eq!(vm.call(addr, &[21]).unwrap(), 42);
    }

    #[test]
    fn fuel_limit_stops_runaway_loops() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("spin");
        cs.push(Insn::j(Op::J, -1));
        cs.finish_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.set_fuel(1000);
        assert_eq!(vm.call(CODE_BASE, &[]), Err(VmError::OutOfFuel));
    }

    #[test]
    fn calling_freed_code_faults_stale() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Addiw, A0, A0, 1));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        cs.free_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        assert_eq!(vm.call(addr, &[1]), Err(VmError::StaleCode(addr)));
    }

    #[test]
    fn cycle_costs_accumulate_per_model() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::r(Op::Mulw, A0, A0, A1));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        vm.call(addr, &[6, 7]).unwrap();
        let m = CostModel::default();
        assert_eq!(vm.cycles(), m.mul + m.call); // mulw + jalr(ret)
        assert_eq!(vm.insns(), 2);
    }

    #[test]
    fn halt_exits() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn {
            op: Op::Halt,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        });
        cs.finish_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        assert_eq!(vm.run(CODE_BASE).unwrap(), ExitStatus::Halted);
    }

    #[test]
    fn hcall_reaches_host_closure() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Hcall, ZERO, ZERO, 7));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let host = |num: u32, st: &mut MachineState| {
            st.set_ret(num as u64 * 6);
            Ok(())
        };
        let mut vm = Vm::with_host(cs, 1 << 20, host);
        assert_eq!(vm.call(addr, &[0]).unwrap(), 42);
    }

    #[test]
    fn nohost_faults_on_hcall() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Hcall, ZERO, ZERO, 3));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f).unwrap();
        let mut vm = Vm::new(cs, 1 << 20);
        assert_eq!(vm.call(addr, &[]), Err(VmError::BadHostCall(3)));
    }

    #[test]
    fn at_registers_usable_as_scratch() {
        let got = run1(
            &[
                Insn::i(Op::Addid, AT0, ZERO, 40),
                Insn::i(Op::Addiw, A0, AT0, 2),
            ],
            &[0],
        )
        .unwrap();
        assert_eq!(got, 42);
    }

    use crate::regs::{RA, SP};
}
