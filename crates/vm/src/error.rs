//! Machine fault conditions.

use std::fmt;

/// A machine fault raised by the interpreter, decoder, or memory system.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VmError {
    /// An unassigned opcode byte was fetched.
    BadOpcode(u8),
    /// A data access touched an address outside the mapped data memory.
    BadAddress(u64),
    /// A load or store was not aligned to its access size.
    Misaligned(u64),
    /// The program counter left the code space or a fetched word was not
    /// part of any function.
    BadPc(u64),
    /// Integer division or remainder by zero.
    DivideByZero,
    /// The cycle budget was exhausted (runaway-loop backstop).
    OutOfFuel,
    /// A `hcall` named an unregistered host call number.
    BadHostCall(u32),
    /// A host call failed; carries its diagnostic message.
    Host(String),
    /// The stack pointer crossed into the heap.
    StackOverflow,
    /// Execution entered a word range that was freed (or never sealed):
    /// the address was once handed out but its code no longer exists.
    StaleCode(u64),
    /// A code-space lifecycle violation: sealing a function twice,
    /// taking the address of an unfinished or freed function, or
    /// freeing a function that is not sealed.
    CodeLifecycle(String),
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::BadOpcode(b) => write!(f, "unassigned opcode byte {b:#04x}"),
            VmError::BadAddress(a) => write!(f, "data access out of bounds at {a:#x}"),
            VmError::Misaligned(a) => write!(f, "misaligned access at {a:#x}"),
            VmError::BadPc(a) => write!(f, "program counter out of code space at {a:#x}"),
            VmError::DivideByZero => write!(f, "integer division by zero"),
            VmError::OutOfFuel => write!(f, "cycle budget exhausted"),
            VmError::BadHostCall(n) => write!(f, "unregistered host call {n}"),
            VmError::Host(msg) => write!(f, "host call failed: {msg}"),
            VmError::StackOverflow => write!(f, "stack overflow"),
            VmError::StaleCode(a) => {
                write!(f, "call into freed or unsealed code at {a:#x}")
            }
            VmError::CodeLifecycle(msg) => write!(f, "code lifecycle violation: {msg}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_nonempty() {
        let errors = [
            VmError::BadOpcode(7),
            VmError::BadAddress(16),
            VmError::Misaligned(3),
            VmError::BadPc(0),
            VmError::DivideByZero,
            VmError::OutOfFuel,
            VmError::BadHostCall(9),
            VmError::Host("x".into()),
            VmError::StackOverflow,
            VmError::StaleCode(0x8000_0000),
            VmError::CodeLifecycle("y".into()),
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase());
        }
    }
}
