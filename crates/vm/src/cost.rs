//! The cycle cost model.
//!
//! The paper measured on a 70 MHz SparcStation 5 (microSPARC-II): integer
//! multiply and especially divide were slow (sometimes software), loads
//! cost more than ALU operations, and taken branches paid a pipeline
//! bubble. The defaults here mirror that flavor; every experiment prints
//! the model it ran under so results are interpretable.

use crate::isa::{CostClass, Op};

/// Maps opcode cost classes to cycle counts. All counts are per executed
/// instruction; taken branches add [`CostModel::branch_taken_extra`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Integer ALU ops (add, logic, shifts, compares, `sethi`).
    pub alu: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Integer divide / remainder.
    pub div: u64,
    /// FP add/sub/neg/mov/compare/convert.
    pub fadd: u64,
    /// FP multiply.
    pub fmul: u64,
    /// FP divide.
    pub fdiv: u64,
    /// Memory load.
    pub load: u64,
    /// Memory store.
    pub store: u64,
    /// Conditional branch, not taken.
    pub branch: u64,
    /// Extra cycles when a conditional branch is taken.
    pub branch_taken_extra: u64,
    /// Unconditional jump.
    pub jump: u64,
    /// Call (`jal`, `jalr`).
    pub call: u64,
    /// Host call trap overhead.
    pub hcall: u64,
    /// `nop` / `halt`.
    pub nop: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::sparcstation5()
    }
}

impl CostModel {
    /// The default model: SparcStation-5 flavored latencies.
    pub fn sparcstation5() -> CostModel {
        CostModel {
            alu: 1,
            mul: 5,
            div: 20,
            fadd: 4,
            fmul: 5,
            fdiv: 25,
            load: 2,
            store: 2,
            branch: 1,
            branch_taken_extra: 1,
            jump: 1,
            call: 2,
            hcall: 10,
            nop: 1,
        }
    }

    /// A uniform model (every instruction costs one cycle); useful for
    /// isolating instruction-count effects in ablations.
    pub fn uniform() -> CostModel {
        CostModel {
            alu: 1,
            mul: 1,
            div: 1,
            fadd: 1,
            fmul: 1,
            fdiv: 1,
            load: 1,
            store: 1,
            branch: 1,
            branch_taken_extra: 0,
            jump: 1,
            call: 1,
            hcall: 1,
            nop: 1,
        }
    }

    /// Order-sensitive fold of every field — part of the persistent
    /// store's ABI salt. Two models that would cost any instruction
    /// differently digest differently, so artifacts (and their
    /// prebuilt translations) compiled under one model are never
    /// served to a session running another.
    pub fn digest(&self) -> u64 {
        let fields = [
            self.alu,
            self.mul,
            self.div,
            self.fadd,
            self.fmul,
            self.fdiv,
            self.load,
            self.store,
            self.branch,
            self.branch_taken_extra,
            self.jump,
            self.call,
            self.hcall,
            self.nop,
        ];
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        for f in fields {
            h ^= f.wrapping_add(0x9e37_79b9_7f4a_7c15);
            h = h.rotate_left(27).wrapping_mul(0x94d0_49bb_1331_11eb);
        }
        h
    }

    /// Base cycle cost of an opcode (before the taken-branch penalty).
    pub fn cost(&self, op: Op) -> u64 {
        match op.cost_class() {
            CostClass::Alu => self.alu,
            CostClass::Mul => self.mul,
            CostClass::Div => self.div,
            CostClass::FAdd => self.fadd,
            CostClass::FMul => self.fmul,
            CostClass::FDiv => self.fdiv,
            CostClass::Load => self.load,
            CostClass::Store => self.store,
            CostClass::Branch => self.branch,
            CostClass::Jump => self.jump,
            CostClass::Call => self.call,
            CostClass::HCall => self.hcall,
            CostClass::Nop => self.nop,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sparcstation5() {
        assert_eq!(CostModel::default(), CostModel::sparcstation5());
    }

    #[test]
    fn division_is_much_slower_than_alu() {
        let m = CostModel::default();
        assert!(m.cost(Op::Divw) >= 10 * m.cost(Op::Addw));
        assert!(m.cost(Op::Mulw) > m.cost(Op::Addw));
        assert!(m.cost(Op::Lw) > m.cost(Op::Addw));
    }

    #[test]
    fn uniform_model_is_flat() {
        let m = CostModel::uniform();
        for &op in Op::ALL {
            assert_eq!(m.cost(op), 1);
        }
    }
}
