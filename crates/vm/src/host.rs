//! Host call interface.
//!
//! `hcall n` traps out of generated code into the embedding Rust program.
//! This is how the `C run-time system is reached: closure allocation,
//! `compile`, `printf`-style output, and `malloc` are all host calls
//! installed by higher layers (see the `tcc` crate).

use crate::error::VmError;
use crate::interp::MachineState;

/// Handler for `hcall` traps.
///
/// Arguments arrive in the integer argument registers (`a0`..`a5`) and
/// floating point argument registers; results are returned in `a0` (or
/// `fa0`). The handler may freely mutate machine state, including
/// appending new functions to the code space — that is exactly what
/// `compile` does.
///
/// Hosts are `'static` (they own their state rather than borrowing it)
/// so the adaptive engine's background translation worker, whose
/// channel types are parameterized over the host, can outlive any
/// particular borrow of the VM.
pub trait HostCall: 'static {
    /// Handles host call number `num`.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadHostCall`] for unknown numbers, or
    /// [`VmError::Host`] to abort execution with a diagnostic.
    fn call(&mut self, num: u32, state: &mut MachineState) -> Result<(), VmError>;
}

/// A host that provides no calls; every `hcall` faults. The default for
/// [`crate::Vm::new`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoHost;

impl HostCall for NoHost {
    fn call(&mut self, num: u32, _state: &mut MachineState) -> Result<(), VmError> {
        Err(VmError::BadHostCall(num))
    }
}

impl<F> HostCall for F
where
    F: FnMut(u32, &mut MachineState) -> Result<(), VmError> + 'static,
{
    fn call(&mut self, num: u32, state: &mut MachineState) -> Result<(), VmError> {
        self(num, state)
    }
}
