//! The code space: where generated binary code lives.
//!
//! Code addresses are distinguished from data addresses by bit 31
//! ([`CODE_BASE`]), mirroring a separate text segment. All emitters
//! (static back ends, VCODE, ICODE) append encoded instruction words here
//! and hand out callable function addresses.
//!
//! Beyond the grow-only arena of the original system, the space manages
//! the full *lifecycle* of dynamic code (the substrate of the `tcc-cache`
//! subsystem):
//!
//! * every function is `Building` → `Sealed` → (optionally) `Freed`;
//!   sealing twice, taking the address of an unsealed or freed function,
//!   and freeing an unsealed function are [`VmError::CodeLifecycle`]
//!   faults instead of silent stale-pointer sources;
//! * [`CodeSpace::free_function`] returns a sealed function's words to a
//!   sorted, coalescing free list; a later [`CodeSpace::finish_function`]
//!   relocates the just-emitted function into the first fitting hole
//!   (branches are PC-relative, so only `j`/`jal` words that target
//!   other functions need their displacement adjusted);
//! * executing a word that is not part of a live sealed function — a
//!   freed range, jitter padding, or a function still being emitted —
//!   faults with [`VmError::StaleCode`] rather than running whatever
//!   bytes occupy the range;
//! * [`CodeSpace::stats`] reports live/free/reclaimed words and a
//!   fragmentation ratio, which the cache layer mirrors into
//!   `SessionMetrics`.
//!
//! Following the paper (§4.4: "we attempt to minimize poor cache behavior
//! by choosing the address of the beginning of the dynamic code randomly
//! modulo the cache size"), the space can pad each new function by a
//! deterministic pseudo-random number of words when
//! [`CodeSpace::set_placement_jitter`] is enabled. Padding applies only
//! to fresh tail placements: a function relocated into a reused range
//! lands at the range's exact start (re-padding would defeat reuse).

use crate::error::VmError;
use crate::isa::{Insn, Op};

/// Base address of the code space; all code addresses have this bit set.
pub const CODE_BASE: u64 = 0x8000_0000;

/// Signed 24-bit jump displacement range (word offsets), the reach of a
/// relocated `j`/`jal`.
const IMM24_MIN: i64 = -(1 << 23);
const IMM24_MAX: i64 = (1 << 23) - 1;

/// Handle to a function under construction, returned by
/// [`CodeSpace::begin_function`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuncHandle(usize);

/// Where a function is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FuncState {
    /// Between `begin_function` and `finish_function`.
    Building,
    /// Sealed: callable, words are live.
    Sealed,
    /// Freed: words returned to the free list; the handle is dead.
    Freed,
}

#[derive(Clone, Debug)]
struct FuncInfo {
    name: String,
    /// Tail length before any jitter padding was emitted (what the tail
    /// rolls back to when the function relocates into a reused range).
    alloc_start: usize,
    start_word: usize,
    end_word: usize,
    state: FuncState,
}

/// Occupancy accounting for a [`CodeSpace`] (the raw material of the
/// cache layer's fragmentation and reclamation metrics).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CodeStats {
    /// Total words ever emitted (the arena's high-water mark).
    pub total_words: usize,
    /// Words inside live (sealed, not freed) functions.
    pub live_words: usize,
    /// Words currently sitting in the free list.
    pub free_words: usize,
    /// Cumulative words ever freed (monotonic; reuse does not subtract).
    pub reclaimed_words: usize,
    /// Largest single free-list range, in words.
    pub largest_free: usize,
}

impl CodeStats {
    /// Free-space fragmentation: `1 - largest_free / free_words`
    /// (0.0 when the free list is empty or a single range).
    pub fn fragmentation(&self) -> f64 {
        if self.free_words == 0 {
            0.0
        } else {
            1.0 - self.largest_free as f64 / self.free_words as f64
        }
    }
}

/// A growable region of encoded instruction words plus a registry of the
/// functions inside it.
#[derive(Clone, Debug, Default)]
pub struct CodeSpace {
    words: Vec<u32>,
    /// Parallel to `words`: true iff the word belongs to a live sealed
    /// function. Checked on every executed fetch ([`CodeSpace::fetch_exec`]).
    live: Vec<bool>,
    funcs: Vec<FuncInfo>,
    /// Sorted, coalesced `(start_word, len)` ranges available for reuse.
    free: Vec<(usize, usize)>,
    live_words: usize,
    reclaimed_words: usize,
    jitter_state: Option<u64>,
    /// Bumped whenever previously-live code stops meaning what it did:
    /// a function is freed, or a live word is patched. Consumers that
    /// cache decoded forms of live code (the predecoded execution
    /// engine) revalidate against this before trusting their caches.
    live_epoch: u64,
}

impl CodeSpace {
    /// Creates an empty code space.
    pub fn new() -> CodeSpace {
        CodeSpace::default()
    }

    /// Enables deterministic pseudo-random placement padding (0..64 words)
    /// before each subsequently begun function, seeded with `seed`.
    /// Reproduces the paper's cache-conscious random placement of dynamic
    /// code; off by default so tests are layout-stable. Functions that
    /// relocate into a reused free range are not padded.
    pub fn set_placement_jitter(&mut self, seed: u64) {
        // splitmix64 finalizer: adjacent seeds must yield unrelated
        // streams, and the xorshift state must be nonzero.
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        self.jitter_state = Some((z ^ (z >> 31)) | 1);
    }

    /// Starts a new function named `name` (for disassembly and
    /// diagnostics) and returns its handle. Instructions pushed until the
    /// matching [`CodeSpace::finish_function`] belong to it.
    pub fn begin_function(&mut self, name: &str) -> FuncHandle {
        let alloc_start = self.words.len();
        if let Some(state) = self.jitter_state.as_mut() {
            // xorshift64; pad by 0..64 words.
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            let pad = (*state % 64) as usize;
            self.words
                .extend(std::iter::repeat_n(Insn::nop().encode(), pad));
            self.live.extend(std::iter::repeat_n(false, pad));
        }
        let h = FuncHandle(self.funcs.len());
        self.funcs.push(FuncInfo {
            name: name.to_string(),
            alloc_start,
            start_word: self.words.len(),
            end_word: usize::MAX,
            state: FuncState::Building,
        });
        h
    }

    /// Seals the function begun with `handle` and returns its callable
    /// address. If a free-list range fits, the function is relocated into
    /// it (first fit) and the emission tail rolls back, so freed code
    /// space is actually recycled.
    ///
    /// # Errors
    ///
    /// [`VmError::CodeLifecycle`] if the function was already sealed (or
    /// freed): a double-finish would silently re-seal a stale range.
    pub fn finish_function(&mut self, handle: FuncHandle) -> Result<u64, VmError> {
        let info = &self.funcs[handle.0];
        if info.state != FuncState::Building {
            return Err(VmError::CodeLifecycle(format!(
                "function {} sealed twice",
                info.name
            )));
        }
        let (alloc_start, start) = (info.alloc_start, info.start_word);
        let len = self.words.len() - start;
        if let Some(new_start) = self.try_relocate(start, len) {
            // Tail rolls back past the function and its jitter padding:
            // reused ranges are placed exactly, never re-padded.
            self.words.truncate(alloc_start);
            self.live.truncate(alloc_start);
            for w in &mut self.live[new_start..new_start + len] {
                *w = true;
            }
            let info = &mut self.funcs[handle.0];
            info.start_word = new_start;
            info.end_word = new_start + len;
            info.state = FuncState::Sealed;
            self.live_words += len;
            return Ok(CODE_BASE + (new_start as u64) * 4);
        }
        self.live.resize(self.words.len(), false);
        for w in &mut self.live[start..start + len] {
            *w = true;
        }
        let info = &mut self.funcs[handle.0];
        info.end_word = start + len;
        info.state = FuncState::Sealed;
        self.live_words += len;
        Ok(CODE_BASE + (start as u64) * 4)
    }

    /// Returns a sealed function's words to the free list (coalescing
    /// with adjacent free ranges) and kills its address: subsequent
    /// execution in the range faults with [`VmError::StaleCode`] until
    /// a later function reuses it.
    ///
    /// # Errors
    ///
    /// [`VmError::CodeLifecycle`] if the function is still being built,
    /// or was already freed.
    pub fn free_function(&mut self, handle: FuncHandle) -> Result<u64, VmError> {
        let info = &self.funcs[handle.0];
        if info.state != FuncState::Sealed {
            return Err(VmError::CodeLifecycle(format!(
                "cannot free function {} (not sealed)",
                info.name
            )));
        }
        let (start, end) = (info.start_word, info.end_word);
        let len = end - start;
        self.funcs[handle.0].state = FuncState::Freed;
        self.live_epoch += 1;
        for w in &mut self.live[start..end] {
            *w = false;
        }
        self.live_words -= len;
        self.reclaimed_words += len;
        self.insert_free(start, len);
        Ok((len as u64) * 4)
    }

    /// Inserts `(start, len)` into the sorted free list, merging with
    /// adjacent ranges.
    fn insert_free(&mut self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let i = self.free.partition_point(|&(s, _)| s < start);
        let merges_prev = i > 0 && self.free[i - 1].0 + self.free[i - 1].1 == start;
        let merges_next = i < self.free.len() && start + len == self.free[i].0;
        match (merges_prev, merges_next) {
            (true, true) => {
                self.free[i - 1].1 += len + self.free[i].1;
                self.free.remove(i);
            }
            (true, false) => self.free[i - 1].1 += len,
            (false, true) => {
                self.free[i].0 = start;
                self.free[i].1 += len;
            }
            (false, false) => self.free.insert(i, (start, len)),
        }
    }

    /// Attempts to move the just-emitted (still unsealed) function at
    /// `[start, start+len)` — always the emission tail — into the first
    /// fitting free range. Returns the new start word on success.
    ///
    /// Branches and in-function jumps are PC-relative word offsets, so
    /// the words move verbatim; `j`/`jal` words whose target lies outside
    /// the function (direct calls to other functions) get their
    /// displacement adjusted by the move distance. Bails out (`None`) on
    /// any word it cannot prove safe to move.
    fn try_relocate(&mut self, start: usize, len: usize) -> Option<usize> {
        let fit = self
            .free
            .iter()
            .position(|&(s, l)| l >= len && s + len <= start)?;
        let new_start = self.free[fit].0;
        let delta = (start - new_start) as i64;
        let mut moved = Vec::with_capacity(len);
        for i in 0..len {
            let word = self.words[start + i];
            let Ok(mut insn) = Insn::decode(word) else {
                return None; // raw data word: cannot prove relocatable
            };
            let target = (start + i) as i64 + 1 + insn.imm as i64;
            let internal = target >= start as i64 && target < (start + len) as i64;
            match insn.op {
                Op::J | Op::Jal => {
                    if !internal {
                        let imm = insn.imm as i64 + delta;
                        if !(IMM24_MIN..=IMM24_MAX).contains(&imm) {
                            return None;
                        }
                        insn.imm = imm as i32;
                        moved.push(insn.encode());
                        continue;
                    }
                    moved.push(word);
                }
                op if op.is_branch() => {
                    if !internal {
                        return None; // cross-function branch: never emitted
                    }
                    moved.push(word);
                }
                _ => moved.push(word),
            }
        }
        self.words[new_start..new_start + len].copy_from_slice(&moved);
        // Consume the fitted prefix of the free range.
        let (s, l) = self.free[fit];
        if l == len {
            self.free.remove(fit);
        } else {
            self.free[fit] = (s + len, l - len);
        }
        Some(new_start)
    }

    /// The callable address of a sealed function.
    ///
    /// # Errors
    ///
    /// [`VmError::CodeLifecycle`] if the function is unfinished (its
    /// final placement is not yet known) or freed (the address would be
    /// stale).
    pub fn addr_of(&self, handle: FuncHandle) -> Result<u64, VmError> {
        let info = &self.funcs[handle.0];
        match info.state {
            FuncState::Sealed => Ok(CODE_BASE + (info.start_word as u64) * 4),
            FuncState::Building => Err(VmError::CodeLifecycle(format!(
                "address of unfinished function {}",
                info.name
            ))),
            FuncState::Freed => Err(VmError::CodeLifecycle(format!(
                "address of freed function {}",
                info.name
            ))),
        }
    }

    /// Size in bytes of a sealed function's words.
    ///
    /// # Errors
    ///
    /// [`VmError::CodeLifecycle`] unless the function is sealed.
    pub fn size_of(&self, handle: FuncHandle) -> Result<u64, VmError> {
        let info = &self.funcs[handle.0];
        if info.state != FuncState::Sealed {
            return Err(VmError::CodeLifecycle(format!(
                "size of non-sealed function {}",
                info.name
            )));
        }
        Ok(((info.end_word - info.start_word) as u64) * 4)
    }

    /// Occupancy accounting: live/free/reclaimed words and the largest
    /// free range.
    pub fn stats(&self) -> CodeStats {
        CodeStats {
            total_words: self.words.len(),
            live_words: self.live_words,
            free_words: self.free.iter().map(|&(_, l)| l).sum(),
            reclaimed_words: self.reclaimed_words,
            largest_free: self.free.iter().map(|&(_, l)| l).max().unwrap_or(0),
        }
    }

    /// Appends one instruction; returns its word index (for patching).
    #[inline]
    pub fn push(&mut self, insn: Insn) -> usize {
        let idx = self.words.len();
        self.words.push(insn.encode());
        self.live.push(false);
        idx
    }

    /// Appends a raw already-encoded word; returns its word index.
    #[inline]
    pub fn push_word(&mut self, word: u32) -> usize {
        let idx = self.words.len();
        self.words.push(word);
        self.live.push(false);
        idx
    }

    /// Overwrites the word at `index` (used to resolve forward branch
    /// references).
    ///
    /// # Panics
    ///
    /// Panics if `index` has not been emitted yet.
    #[inline]
    pub fn patch(&mut self, index: usize, insn: Insn) {
        // Patching a *live* word rewrites sealed code under any decoded
        // cache; building-phase patches (forward branch resolution) hit
        // not-yet-live words and stay epoch-neutral.
        if self.live.get(index).copied().unwrap_or(false) {
            self.live_epoch += 1;
        }
        self.words[index] = insn.encode();
    }

    /// Number of instruction words emitted so far (also the index the next
    /// push will get).
    #[inline]
    pub fn next_index(&self) -> usize {
        self.words.len()
    }

    /// The address the next pushed instruction will have.
    #[inline]
    pub fn next_addr(&self) -> u64 {
        CODE_BASE + (self.words.len() as u64) * 4
    }

    /// Fetches the instruction word at a code address, without a
    /// liveness check — for patching and inspection. Execution goes
    /// through [`CodeSpace::fetch_exec`].
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadPc`] for addresses outside the emitted range
    /// or not word-aligned.
    #[inline]
    pub fn fetch(&self, pc: u64) -> Result<u32, VmError> {
        if pc < CODE_BASE || !pc.is_multiple_of(4) {
            return Err(VmError::BadPc(pc));
        }
        let idx = ((pc - CODE_BASE) / 4) as usize;
        self.words.get(idx).copied().ok_or(VmError::BadPc(pc))
    }

    /// Fetches the instruction word at `pc` for *execution*: the word
    /// must belong to a live sealed function.
    ///
    /// # Errors
    ///
    /// [`VmError::BadPc`] outside the emitted range or misaligned;
    /// [`VmError::StaleCode`] inside a freed range, jitter padding, or a
    /// function that was never sealed.
    #[inline]
    pub fn fetch_exec(&self, pc: u64) -> Result<u32, VmError> {
        if pc < CODE_BASE || !pc.is_multiple_of(4) {
            return Err(VmError::BadPc(pc));
        }
        let idx = ((pc - CODE_BASE) / 4) as usize;
        match self.words.get(idx) {
            None => Err(VmError::BadPc(pc)),
            Some(_) if !self.live[idx] => Err(VmError::StaleCode(pc)),
            Some(&w) => Ok(w),
        }
    }

    /// Monotonic invalidation counter: bumped when a function is freed
    /// or a live (sealed) word is patched. Sealing a new function never
    /// bumps it — fresh code only turns dead words live, so decoded
    /// caches of other functions stay valid across `compile` calls.
    #[inline]
    pub fn live_epoch(&self) -> u64 {
        self.live_epoch
    }

    /// The `[start_word, end_word)` range of the live sealed function
    /// containing word index `idx`, if any. Jitter padding and freed or
    /// still-building ranges have no containing function.
    pub fn live_range_containing(&self, idx: usize) -> Option<(usize, usize)> {
        self.funcs
            .iter()
            .find(|f| f.state == FuncState::Sealed && idx >= f.start_word && idx < f.end_word)
            .map(|f| (f.start_word, f.end_word))
    }

    /// Raw encoded words of `[start, end)` (translation input).
    #[inline]
    pub(crate) fn word_slice(&self, start: usize, end: usize) -> &[u32] {
        &self.words[start..end]
    }

    /// True if `addr` points into the code space's emitted range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= CODE_BASE && ((addr - CODE_BASE) / 4) < self.words.len() as u64
    }

    /// Name of the live function containing `addr`, if any (diagnostics).
    pub fn function_at(&self, addr: u64) -> Option<&str> {
        if addr < CODE_BASE {
            return None;
        }
        let w = ((addr - CODE_BASE) / 4) as usize;
        self.funcs
            .iter()
            .find(|f| f.state == FuncState::Sealed && w >= f.start_word && w < f.end_word)
            .map(|f| f.name.as_str())
    }

    /// Disassembles the function at `handle` into one line per
    /// instruction, annotated with word offsets.
    pub fn disassemble(&self, handle: FuncHandle) -> String {
        let info = &self.funcs[handle.0];
        let end = info.end_word.min(self.words.len());
        let mut out = format!("{}:\n", info.name);
        for (i, w) in self.words[info.start_word..end].iter().enumerate() {
            match Insn::decode(*w) {
                Ok(insn) => out.push_str(&format!("  {i:4}: {insn}\n")),
                Err(_) => out.push_str(&format!("  {i:4}: .word {w:#010x}\n")),
            }
        }
        out
    }

    /// Disassembles the live function containing `addr`, if any.
    pub fn disassemble_at(&self, addr: u64) -> Option<String> {
        if addr < CODE_BASE {
            return None;
        }
        let w = ((addr - CODE_BASE) / 4) as usize;
        let idx = self
            .funcs
            .iter()
            .position(|f| f.state == FuncState::Sealed && w >= f.start_word && w < f.end_word)?;
        Some(self.disassemble(FuncHandle(idx)))
    }

    /// Decoded instructions of a finished function (testing/analysis).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadOpcode`] if a word does not decode.
    pub fn instructions(&self, handle: FuncHandle) -> Result<Vec<Insn>, VmError> {
        let info = &self.funcs[handle.0];
        let end = info.end_word.min(self.words.len());
        self.words[info.start_word..end]
            .iter()
            .map(|w| Insn::decode(*w))
            .collect()
    }

    /// Snapshot of a sealed function as a shareable artifact: its start
    /// word index (the coordinate system of any cross-function `j`/`jal`
    /// displacements inside it) plus its encoded words. The pair is what
    /// [`CodeSpace::install_function`] needs to replant the function in
    /// *another* code space.
    ///
    /// # Errors
    ///
    /// [`VmError::CodeLifecycle`] unless the function is sealed.
    pub fn function_words(&self, handle: FuncHandle) -> Result<(usize, Vec<u32>), VmError> {
        let info = &self.funcs[handle.0];
        if info.state != FuncState::Sealed {
            return Err(VmError::CodeLifecycle(format!(
                "words of non-sealed function {}",
                info.name
            )));
        }
        Ok((
            info.start_word,
            self.words[info.start_word..info.end_word].to_vec(),
        ))
    }

    /// Installs a function exported from another code space (via
    /// [`CodeSpace::function_words`]) and seals it, returning its address
    /// and handle here. `orig_start` is the start word index the words
    /// were sealed at in the *source* space: external `j`/`jal`
    /// displacements are rebased by the placement delta, exactly as
    /// relocation does (and composing with it if the function then lands
    /// in a free-list hole). Both spaces must lay out their statically
    /// compiled functions identically, or the rebased calls target the
    /// wrong code — the caller (the shared artifact cache) guarantees
    /// this by keying artifacts on a fingerprint that covers the source
    /// program and its configuration.
    ///
    /// # Errors
    ///
    /// [`VmError::CodeLifecycle`] if a word cannot be proven installable
    /// (undecodable data word, cross-function branch, or a rebased
    /// displacement out of `j`/`jal` range); the space is left exactly as
    /// it was, so the caller can fall back to a fresh compile.
    pub fn install_function(
        &mut self,
        name: &str,
        words: &[u32],
        orig_start: usize,
    ) -> Result<(u64, FuncHandle), VmError> {
        let handle = self.begin_function(name);
        let new_start = self.funcs[handle.0].start_word;
        let delta = orig_start as i64 - new_start as i64;
        let len = words.len();
        for (i, &word) in words.iter().enumerate() {
            let fail = |cs: &mut CodeSpace, why: &str| {
                cs.abort_install(handle);
                Err(VmError::CodeLifecycle(format!(
                    "artifact {name} not installable: {why} at word {i}"
                )))
            };
            let Ok(mut insn) = Insn::decode(word) else {
                return fail(self, "undecodable word");
            };
            let target = (orig_start + i) as i64 + 1 + insn.imm as i64;
            let internal = target >= orig_start as i64 && target < (orig_start + len) as i64;
            match insn.op {
                Op::J | Op::Jal if !internal => {
                    let imm = insn.imm as i64 + delta;
                    if !(IMM24_MIN..=IMM24_MAX).contains(&imm) {
                        return fail(self, "rebased jump out of range");
                    }
                    insn.imm = imm as i32;
                    self.push(insn);
                }
                op if op.is_branch() && !internal => {
                    return fail(self, "cross-function branch");
                }
                _ => {
                    self.push_word(word);
                }
            }
        }
        let addr = self.finish_function(handle)?;
        Ok((addr, handle))
    }

    /// Rolls back a function begun by [`CodeSpace::install_function`]:
    /// the emission tail (including jitter padding) is truncated and the
    /// registry entry removed. Only valid while the function is the
    /// still-building last entry.
    fn abort_install(&mut self, handle: FuncHandle) {
        debug_assert_eq!(handle.0 + 1, self.funcs.len());
        debug_assert_eq!(self.funcs[handle.0].state, FuncState::Building);
        let alloc_start = self.funcs[handle.0].alloc_start;
        self.words.truncate(alloc_start);
        self.live.truncate(alloc_start);
        self.funcs.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op;
    use crate::regs::{A0, A1};

    fn seal(cs: &mut CodeSpace, f: FuncHandle) -> u64 {
        cs.finish_function(f).expect("seals")
    }

    #[test]
    fn function_addresses_and_fetch() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Addiw, A0, A0, 1));
        cs.push(Insn::ret());
        let addr = seal(&mut cs, f);
        assert_eq!(addr, CODE_BASE);
        let w = cs.fetch(addr).unwrap();
        assert_eq!(Insn::decode(w).unwrap().op, Op::Addiw);
        assert_eq!(
            Insn::decode(cs.fetch(addr + 4).unwrap()).unwrap(),
            Insn::ret()
        );
        assert_eq!(cs.fetch_exec(addr).unwrap(), w);
    }

    #[test]
    fn fetch_rejects_bad_pcs() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::ret());
        seal(&mut cs, f);
        assert!(matches!(cs.fetch(CODE_BASE + 2), Err(VmError::BadPc(_))));
        assert!(matches!(cs.fetch(CODE_BASE + 8), Err(VmError::BadPc(_))));
        assert!(matches!(cs.fetch(0x1000), Err(VmError::BadPc(_))));
    }

    #[test]
    fn patch_rewrites_word() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        let idx = cs.push(Insn::nop());
        cs.push(Insn::ret());
        cs.patch(idx, Insn::i(Op::Addiw, A0, A1, 7));
        seal(&mut cs, f);
        let insns = cs.instructions(f).unwrap();
        assert_eq!(insns[0], Insn::i(Op::Addiw, A0, A1, 7));
    }

    #[test]
    fn double_finish_is_a_lifecycle_error() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::ret());
        seal(&mut cs, f);
        assert!(matches!(
            cs.finish_function(f),
            Err(VmError::CodeLifecycle(_))
        ));
    }

    #[test]
    fn addr_of_unfinished_and_freed_functions_is_refused() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::ret());
        assert!(matches!(cs.addr_of(f), Err(VmError::CodeLifecycle(_))));
        let addr = seal(&mut cs, f);
        assert_eq!(cs.addr_of(f).unwrap(), addr);
        cs.free_function(f).unwrap();
        assert!(matches!(cs.addr_of(f), Err(VmError::CodeLifecycle(_))));
    }

    #[test]
    fn freed_code_faults_on_execution_fetch() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::ret());
        let addr = seal(&mut cs, f);
        assert!(cs.fetch_exec(addr).is_ok());
        cs.free_function(f).unwrap();
        assert!(matches!(cs.fetch_exec(addr), Err(VmError::StaleCode(_))));
        // Raw fetch (inspection) still sees the word.
        assert!(cs.fetch(addr).is_ok());
    }

    #[test]
    fn unsealed_code_faults_on_execution_fetch() {
        let mut cs = CodeSpace::new();
        let _f = cs.begin_function("f");
        cs.push(Insn::ret());
        assert!(matches!(
            cs.fetch_exec(CODE_BASE),
            Err(VmError::StaleCode(_))
        ));
    }

    #[test]
    fn free_function_requires_sealed() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::ret());
        assert!(matches!(
            cs.free_function(f),
            Err(VmError::CodeLifecycle(_))
        ));
        seal(&mut cs, f);
        assert!(cs.free_function(f).is_ok());
        assert!(matches!(
            cs.free_function(f),
            Err(VmError::CodeLifecycle(_))
        ));
    }

    #[test]
    fn freed_ranges_are_reused_first_fit() {
        let mut cs = CodeSpace::new();
        let mk = |cs: &mut CodeSpace, name: &str, n: usize| {
            let f = cs.begin_function(name);
            for _ in 0..n - 1 {
                cs.push(Insn::nop());
            }
            cs.push(Insn::ret());
            (f, cs.finish_function(f).unwrap())
        };
        let (a, addr_a) = mk(&mut cs, "a", 8);
        let (_b, _) = mk(&mut cs, "b", 4);
        let freed = cs.free_function(a).unwrap();
        assert_eq!(freed, 8 * 4);
        // Same-size replacement lands exactly in a's old range.
        let (_c, addr_c) = mk(&mut cs, "c", 8);
        assert_eq!(addr_c, addr_a);
        assert_eq!(cs.function_at(addr_c), Some("c"));
        // Tail did not grow: c reused the hole.
        assert_eq!(cs.stats().total_words, 12);
        assert_eq!(cs.stats().reclaimed_words, 8);
    }

    #[test]
    fn smaller_function_splits_the_hole_and_coalescing_merges() {
        let mut cs = CodeSpace::new();
        let mk = |cs: &mut CodeSpace, name: &str, n: usize| {
            let f = cs.begin_function(name);
            for _ in 0..n - 1 {
                cs.push(Insn::nop());
            }
            cs.push(Insn::ret());
            (f, cs.finish_function(f).unwrap())
        };
        let (a, addr_a) = mk(&mut cs, "a", 10);
        let (b, _) = mk(&mut cs, "b", 6);
        let (_guard, _) = mk(&mut cs, "guard", 2);
        cs.free_function(a).unwrap();
        // A 4-word function reuses the front of a's 10-word hole.
        let (_c, addr_c) = mk(&mut cs, "c", 4);
        assert_eq!(addr_c, addr_a);
        assert_eq!(cs.stats().free_words, 6);
        // Freeing b coalesces with the remaining 6-word hole.
        cs.free_function(b).unwrap();
        let st = cs.stats();
        assert_eq!(st.free_words, 12);
        assert_eq!(st.largest_free, 12, "adjacent holes must coalesce");
        assert_eq!(st.fragmentation(), 0.0);
    }

    #[test]
    fn relocation_fixes_cross_function_calls() {
        // callee at 0, filler, caller emitted after a hole opens: the
        // caller's jal must still reach callee after relocating.
        let mut cs = CodeSpace::new();
        let callee = cs.begin_function("callee");
        cs.push(Insn::i(Op::Addiw, A0, A0, 5));
        cs.push(Insn::ret());
        let callee_addr = cs.finish_function(callee).unwrap();
        let filler = cs.begin_function("filler");
        for _ in 0..6 {
            cs.push(Insn::nop());
        }
        cs.push(Insn::ret());
        cs.finish_function(filler).unwrap();
        cs.free_function(filler).unwrap();
        // Emit a caller at the tail; it will relocate into filler's hole.
        let caller = cs.begin_function("caller");
        let at = cs.next_index() as i64;
        let callee_word = ((callee_addr - CODE_BASE) / 4) as i64;
        cs.push(Insn::j(Op::Jal, (callee_word - (at + 1)) as i32));
        cs.push(Insn::ret());
        let caller_addr = cs.finish_function(caller).unwrap();
        assert_eq!(
            caller_addr,
            callee_addr + 2 * 4,
            "caller reuses filler's hole"
        );
        // The relocated jal still targets callee's first word.
        let jal = Insn::decode(cs.fetch_exec(caller_addr).unwrap()).unwrap();
        let target = ((caller_addr - CODE_BASE) / 4) as i64 + 1 + jal.imm as i64;
        assert_eq!(target, callee_word);
    }

    #[test]
    fn stats_track_live_and_free_words() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        for _ in 0..7 {
            cs.push(Insn::nop());
        }
        cs.push(Insn::ret());
        seal(&mut cs, f);
        assert_eq!(cs.stats().live_words, 8);
        assert_eq!(cs.stats().free_words, 0);
        cs.free_function(f).unwrap();
        let st = cs.stats();
        assert_eq!(st.live_words, 0);
        assert_eq!(st.free_words, 8);
        assert_eq!(st.reclaimed_words, 8);
    }

    #[test]
    fn placement_jitter_pads_functions_deterministically() {
        let layout = |seed| {
            let mut cs = CodeSpace::new();
            cs.set_placement_jitter(seed);
            let mut addrs = Vec::new();
            for i in 0..8 {
                let f = cs.begin_function(&format!("f{i}"));
                cs.push(Insn::ret());
                addrs.push(cs.finish_function(f).unwrap());
            }
            addrs
        };
        let a = layout(42);
        let b = layout(42);
        let c = layout(43);
        assert_eq!(a, b, "same seed, same placement");
        assert_ne!(a, c, "different seeds pick different padding");
    }

    #[test]
    fn jitter_does_not_repad_reused_ranges() {
        let mut cs = CodeSpace::new();
        cs.set_placement_jitter(7);
        let mk = |cs: &mut CodeSpace, name: &str, n: usize| {
            let f = cs.begin_function(name);
            for _ in 0..n - 1 {
                cs.push(Insn::nop());
            }
            cs.push(Insn::ret());
            (f, cs.finish_function(f).unwrap())
        };
        let (a, addr_a) = mk(&mut cs, "a", 8);
        let (_b, _) = mk(&mut cs, "b", 8);
        cs.free_function(a).unwrap();
        let before = cs.stats().total_words;
        // The replacement relocates into a's hole at the exact freed
        // address — no fresh padding — and the tail rolls back.
        let (_c, addr_c) = mk(&mut cs, "c", 8);
        assert_eq!(addr_c, addr_a, "reused range is not re-padded");
        assert_eq!(cs.stats().total_words, before, "tail must not grow");
    }

    #[test]
    fn function_at_finds_names() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("alpha");
        cs.push(Insn::ret());
        let fa = seal(&mut cs, f);
        let g = cs.begin_function("beta");
        cs.push(Insn::ret());
        let gb = seal(&mut cs, g);
        assert_eq!(cs.function_at(fa), Some("alpha"));
        assert_eq!(cs.function_at(gb), Some("beta"));
        assert_eq!(cs.function_at(0x10), None);
        cs.free_function(f).unwrap();
        assert_eq!(cs.function_at(fa), None, "freed functions are unnamed");
    }

    #[test]
    fn live_epoch_bumps_only_on_invalidation() {
        let mut cs = CodeSpace::new();
        assert_eq!(cs.live_epoch(), 0);
        let f = cs.begin_function("f");
        let idx = cs.push(Insn::nop());
        cs.push(Insn::ret());
        // Building-phase patches touch dead words: no bump.
        cs.patch(idx, Insn::i(Op::Addiw, A0, A0, 1));
        seal(&mut cs, f);
        assert_eq!(cs.live_epoch(), 0, "sealing must not invalidate");
        cs.patch(idx, Insn::nop());
        assert_eq!(cs.live_epoch(), 1, "patching sealed code invalidates");
        cs.free_function(f).unwrap();
        assert_eq!(cs.live_epoch(), 2, "freeing invalidates");
    }

    #[test]
    fn live_range_containing_tracks_lifecycle() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::nop());
        cs.push(Insn::ret());
        assert_eq!(cs.live_range_containing(0), None, "still building");
        seal(&mut cs, f);
        assert_eq!(cs.live_range_containing(0), Some((0, 2)));
        assert_eq!(cs.live_range_containing(1), Some((0, 2)));
        assert_eq!(cs.live_range_containing(2), None, "past the end");
        cs.free_function(f).unwrap();
        assert_eq!(cs.live_range_containing(0), None, "freed");
    }

    #[test]
    fn install_function_rebases_external_calls() {
        // Source space: callee then caller; export caller and install it
        // into a target space whose identical callee sits at the same
        // word index but whose tail is longer, so the placement delta is
        // nonzero and the external jal must be rebased.
        let build_callee = |cs: &mut CodeSpace| {
            let f = cs.begin_function("callee");
            cs.push(Insn::i(Op::Addiw, A0, A0, 5));
            cs.push(Insn::ret());
            cs.finish_function(f).unwrap()
        };
        let mut src = CodeSpace::new();
        let callee_addr = build_callee(&mut src);
        let caller = src.begin_function("caller");
        let at = src.next_index() as i64;
        let callee_word = ((callee_addr - CODE_BASE) / 4) as i64;
        src.push(Insn::j(Op::Jal, (callee_word - (at + 1)) as i32));
        src.push(Insn::ret());
        src.finish_function(caller).unwrap();
        let (orig_start, words) = src.function_words(caller).unwrap();

        let mut dst = CodeSpace::new();
        build_callee(&mut dst);
        // Extra padding so the install lands at a different word index.
        let pad = dst.begin_function("pad");
        for _ in 0..5 {
            dst.push(Insn::nop());
        }
        dst.push(Insn::ret());
        dst.finish_function(pad).unwrap();
        let (addr, h) = dst.install_function("caller", &words, orig_start).unwrap();
        assert_ne!(addr, CODE_BASE + (orig_start as u64) * 4);
        let jal = Insn::decode(dst.fetch_exec(addr).unwrap()).unwrap();
        let target = ((addr - CODE_BASE) / 4) as i64 + 1 + jal.imm as i64;
        assert_eq!(target, callee_word, "external jal rebased to callee");
        assert_eq!(dst.function_at(addr), Some("caller"));
        assert!(dst.size_of(h).is_ok());
    }

    #[test]
    fn install_function_reuses_free_holes() {
        // Install composes with relocation: the installed function lands
        // in a fitting hole, and internal branches survive both moves.
        let mut src = CodeSpace::new();
        let f = src.begin_function("f");
        src.push(Insn::i(Op::Addiw, A0, A0, 1));
        src.push(Insn::i(Op::Addiw, A0, A0, 2));
        src.push(Insn::ret());
        src.finish_function(f).unwrap();
        let (orig_start, words) = src.function_words(f).unwrap();

        let mut dst = CodeSpace::new();
        let a = dst.begin_function("a");
        for _ in 0..2 {
            dst.push(Insn::nop());
        }
        dst.push(Insn::ret());
        let addr_a = dst.finish_function(a).unwrap();
        let b = dst.begin_function("b");
        dst.push(Insn::ret());
        dst.finish_function(b).unwrap();
        dst.free_function(a).unwrap();
        let (addr, _) = dst.install_function("f", &words, orig_start).unwrap();
        assert_eq!(addr, addr_a, "installed function reuses the hole");
    }

    #[test]
    fn install_function_rejects_uninstallable_words_and_rolls_back() {
        let mut dst = CodeSpace::new();
        let before = dst.stats();
        // An undecodable raw word cannot be proven installable.
        let err = dst.install_function("junk", &[0xFFFF_FFFF], 0);
        assert!(matches!(err, Err(VmError::CodeLifecycle(_))));
        assert_eq!(dst.stats(), before, "failed install must roll back");
        // The space still works afterwards.
        let g = dst.begin_function("g");
        dst.push(Insn::ret());
        assert!(dst.finish_function(g).is_ok());
    }

    #[test]
    fn function_words_requires_sealed() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::ret());
        assert!(matches!(
            cs.function_words(f),
            Err(VmError::CodeLifecycle(_))
        ));
        cs.finish_function(f).unwrap();
        let (start, words) = cs.function_words(f).unwrap();
        assert_eq!(start, 0);
        assert_eq!(words.len(), 1);
        cs.free_function(f).unwrap();
        assert!(matches!(
            cs.function_words(f),
            Err(VmError::CodeLifecycle(_))
        ));
    }

    #[test]
    fn disassembly_contains_mnemonics() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Addiw, A0, A0, 1));
        cs.push(Insn::ret());
        seal(&mut cs, f);
        let d = cs.disassemble(f);
        assert!(d.contains("addiw"));
        assert!(d.contains("jalr"));
    }
}
