//! The code space: where generated binary code lives.
//!
//! Code addresses are distinguished from data addresses by bit 31
//! ([`CODE_BASE`]), mirroring a separate text segment. All emitters
//! (static back ends, VCODE, ICODE) append encoded instruction words here
//! and hand out callable function addresses.
//!
//! Following the paper (§4.4: "we attempt to minimize poor cache behavior
//! by choosing the address of the beginning of the dynamic code randomly
//! modulo the cache size"), the space can pad each new function by a
//! deterministic pseudo-random number of words when
//! [`CodeSpace::set_placement_jitter`] is enabled.

use crate::error::VmError;
use crate::isa::Insn;

/// Base address of the code space; all code addresses have this bit set.
pub const CODE_BASE: u64 = 0x8000_0000;

/// Handle to a function under construction, returned by
/// [`CodeSpace::begin_function`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FuncHandle(usize);

#[derive(Clone, Debug)]
struct FuncInfo {
    name: String,
    start_word: usize,
    end_word: usize,
}

/// A growable region of encoded instruction words plus a registry of the
/// functions inside it.
#[derive(Clone, Debug, Default)]
pub struct CodeSpace {
    words: Vec<u32>,
    funcs: Vec<FuncInfo>,
    jitter_state: Option<u64>,
}

impl CodeSpace {
    /// Creates an empty code space.
    pub fn new() -> CodeSpace {
        CodeSpace::default()
    }

    /// Enables deterministic pseudo-random placement padding (0..64 words)
    /// before each subsequently begun function, seeded with `seed`.
    /// Reproduces the paper's cache-conscious random placement of dynamic
    /// code; off by default so tests are layout-stable.
    pub fn set_placement_jitter(&mut self, seed: u64) {
        self.jitter_state = Some(seed | 1);
    }

    /// Starts a new function named `name` (for disassembly and
    /// diagnostics) and returns its handle. Instructions pushed until the
    /// matching [`CodeSpace::finish_function`] belong to it.
    pub fn begin_function(&mut self, name: &str) -> FuncHandle {
        if let Some(state) = self.jitter_state.as_mut() {
            // xorshift64; pad by 0..64 words.
            *state ^= *state << 13;
            *state ^= *state >> 7;
            *state ^= *state << 17;
            let pad = (*state % 64) as usize;
            self.words
                .extend(std::iter::repeat_n(Insn::nop().encode(), pad));
        }
        let h = FuncHandle(self.funcs.len());
        self.funcs.push(FuncInfo {
            name: name.to_string(),
            start_word: self.words.len(),
            end_word: usize::MAX,
        });
        h
    }

    /// Seals the function begun with `handle` and returns its callable
    /// address.
    pub fn finish_function(&mut self, handle: FuncHandle) -> u64 {
        let info = &mut self.funcs[handle.0];
        info.end_word = self.words.len();
        CODE_BASE + (info.start_word as u64) * 4
    }

    /// The callable address of a (possibly unfinished) function.
    pub fn addr_of(&self, handle: FuncHandle) -> u64 {
        CODE_BASE + (self.funcs[handle.0].start_word as u64) * 4
    }

    /// Appends one instruction; returns its word index (for patching).
    #[inline]
    pub fn push(&mut self, insn: Insn) -> usize {
        let idx = self.words.len();
        self.words.push(insn.encode());
        idx
    }

    /// Appends a raw already-encoded word; returns its word index.
    #[inline]
    pub fn push_word(&mut self, word: u32) -> usize {
        let idx = self.words.len();
        self.words.push(word);
        idx
    }

    /// Overwrites the word at `index` (used to resolve forward branch
    /// references).
    ///
    /// # Panics
    ///
    /// Panics if `index` has not been emitted yet.
    #[inline]
    pub fn patch(&mut self, index: usize, insn: Insn) {
        self.words[index] = insn.encode();
    }

    /// Number of instruction words emitted so far (also the index the next
    /// push will get).
    #[inline]
    pub fn next_index(&self) -> usize {
        self.words.len()
    }

    /// The address the next pushed instruction will have.
    #[inline]
    pub fn next_addr(&self) -> u64 {
        CODE_BASE + (self.words.len() as u64) * 4
    }

    /// Fetches the instruction word at a code address.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadPc`] for addresses outside the emitted range
    /// or not word-aligned.
    #[inline]
    pub fn fetch(&self, pc: u64) -> Result<u32, VmError> {
        if pc < CODE_BASE || !pc.is_multiple_of(4) {
            return Err(VmError::BadPc(pc));
        }
        let idx = ((pc - CODE_BASE) / 4) as usize;
        self.words.get(idx).copied().ok_or(VmError::BadPc(pc))
    }

    /// True if `addr` points into the code space's emitted range.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= CODE_BASE && ((addr - CODE_BASE) / 4) < self.words.len() as u64
    }

    /// Name of the function containing `addr`, if any (diagnostics).
    pub fn function_at(&self, addr: u64) -> Option<&str> {
        if addr < CODE_BASE {
            return None;
        }
        let w = ((addr - CODE_BASE) / 4) as usize;
        self.funcs
            .iter()
            .find(|f| w >= f.start_word && w < f.end_word)
            .map(|f| f.name.as_str())
    }

    /// Disassembles the function at `handle` into one line per
    /// instruction, annotated with word offsets.
    pub fn disassemble(&self, handle: FuncHandle) -> String {
        let info = &self.funcs[handle.0];
        let end = info.end_word.min(self.words.len());
        let mut out = format!("{}:\n", info.name);
        for (i, w) in self.words[info.start_word..end].iter().enumerate() {
            match Insn::decode(*w) {
                Ok(insn) => out.push_str(&format!("  {i:4}: {insn}\n")),
                Err(_) => out.push_str(&format!("  {i:4}: .word {w:#010x}\n")),
            }
        }
        out
    }

    /// Disassembles the function containing `addr`, if any.
    pub fn disassemble_at(&self, addr: u64) -> Option<String> {
        if addr < CODE_BASE {
            return None;
        }
        let w = ((addr - CODE_BASE) / 4) as usize;
        let idx = self
            .funcs
            .iter()
            .position(|f| w >= f.start_word && w < f.end_word)?;
        Some(self.disassemble(FuncHandle(idx)))
    }

    /// Decoded instructions of a finished function (testing/analysis).
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadOpcode`] if a word does not decode.
    pub fn instructions(&self, handle: FuncHandle) -> Result<Vec<Insn>, VmError> {
        let info = &self.funcs[handle.0];
        let end = info.end_word.min(self.words.len());
        self.words[info.start_word..end]
            .iter()
            .map(|w| Insn::decode(*w))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::Op;
    use crate::regs::{A0, A1};

    #[test]
    fn function_addresses_and_fetch() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Addiw, A0, A0, 1));
        cs.push(Insn::ret());
        let addr = cs.finish_function(f);
        assert_eq!(addr, CODE_BASE);
        let w = cs.fetch(addr).unwrap();
        assert_eq!(Insn::decode(w).unwrap().op, Op::Addiw);
        assert_eq!(
            Insn::decode(cs.fetch(addr + 4).unwrap()).unwrap(),
            Insn::ret()
        );
    }

    #[test]
    fn fetch_rejects_bad_pcs() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::ret());
        cs.finish_function(f);
        assert!(matches!(cs.fetch(CODE_BASE + 2), Err(VmError::BadPc(_))));
        assert!(matches!(cs.fetch(CODE_BASE + 8), Err(VmError::BadPc(_))));
        assert!(matches!(cs.fetch(0x1000), Err(VmError::BadPc(_))));
    }

    #[test]
    fn patch_rewrites_word() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        let idx = cs.push(Insn::nop());
        cs.push(Insn::ret());
        cs.patch(idx, Insn::i(Op::Addiw, A0, A1, 7));
        cs.finish_function(f);
        let insns = cs.instructions(f).unwrap();
        assert_eq!(insns[0], Insn::i(Op::Addiw, A0, A1, 7));
    }

    #[test]
    fn placement_jitter_pads_functions_deterministically() {
        let build = |seed| {
            let mut cs = CodeSpace::new();
            cs.set_placement_jitter(seed);
            let f = cs.begin_function("f");
            cs.push(Insn::ret());
            cs.finish_function(f)
        };
        let a = build(42);
        let b = build(42);
        let c = build(43);
        assert_eq!(a, b, "same seed, same placement");
        assert!(a != c || a >= CODE_BASE, "jitter is seed-dependent");
    }

    #[test]
    fn function_at_finds_names() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("alpha");
        cs.push(Insn::ret());
        let fa = cs.finish_function(f);
        let g = cs.begin_function("beta");
        cs.push(Insn::ret());
        let gb = cs.finish_function(g);
        assert_eq!(cs.function_at(fa), Some("alpha"));
        assert_eq!(cs.function_at(gb), Some("beta"));
        assert_eq!(cs.function_at(0x10), None);
    }

    #[test]
    fn disassembly_contains_mnemonics() {
        let mut cs = CodeSpace::new();
        let f = cs.begin_function("f");
        cs.push(Insn::i(Op::Addiw, A0, A0, 1));
        cs.push(Insn::ret());
        cs.finish_function(f);
        let d = cs.disassemble(f);
        assert!(d.contains("addiw"));
        assert!(d.contains("jalr"));
    }
}
