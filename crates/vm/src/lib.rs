//! # tcc-vm — the target machine substrate
//!
//! The tcc paper (PLDI 1997) generates SPARC/MIPS binary code at run time.
//! This reproduction instead targets a deterministic 64-bit load/store RISC
//! **virtual machine** so that every compiler in the workspace — the naive
//! (lcc-like) static back end, the optimizing (gcc-like) static back end,
//! and the VCODE/ICODE dynamic back ends — emits binary code for the *same*
//! ISA and is measured with the *same* cycle cost model.
//!
//! The machine:
//!
//! * 32 integer registers of 64 bits ([`regs`]): `r0` is hardwired zero,
//!   plus link/stack/frame registers, six argument registers, ten
//!   caller-saved and ten callee-saved registers, and two emitter-reserved
//!   scratch registers (used by spill reloads and constant synthesis, like
//!   MIPS `$at`).
//! * 16 double-precision floating point registers.
//! * Fixed-width 32-bit binary instruction encodings ([`isa`]) with 14-bit
//!   immediates and a SPARC-style `sethi` for large constants, so
//!   materializing a 32-bit constant costs two instructions — the code-size
//!   and codegen-cost structure of the paper's targets is preserved.
//! * A flat byte-addressed data memory ([`mem`]) with the stack at the top,
//!   and a separate code space ([`code`]) whose addresses have bit 31 set.
//! * A cycle cost model ([`cost`]) flavored after the paper's 70 MHz
//!   SparcStation 5: multiplies and divides are expensive, loads cost more
//!   than ALU ops. The interpreter ([`interp`]) counts cycles exactly and
//!   deterministically.
//! * Host calls ([`host`]) — the mechanism by which `compile` and the small
//!   `C run-time library are reached from generated code.
//!
//! ## Example
//!
//! ```rust
//! use tcc_vm::isa::{Insn, Op};
//! use tcc_vm::regs::A0;
//! use tcc_vm::{CodeSpace, Vm};
//!
//! # fn main() -> Result<(), tcc_vm::VmError> {
//! let mut code = CodeSpace::new();
//! // fn add1(x) { return x + 1 }
//! let f = code.begin_function("add1");
//! code.push(Insn::i(Op::Addiw, A0, A0, 1));
//! code.push(Insn::ret());
//! let addr = code.finish_function(f)?;
//!
//! let mut vm = Vm::new(code, 1 << 20);
//! let got = vm.call(addr, &[41])?;
//! assert_eq!(got, 42);
//! # Ok(())
//! # }
//! ```

pub mod adaptive;
pub mod code;
pub mod cost;
pub mod error;
pub mod host;
pub mod interp;
pub mod isa;
pub mod mem;
pub mod predecode;
pub mod regs;
pub mod threaded;

pub use adaptive::{AdaptiveStats, Tier, TransHub, DEFAULT_FUSE_AFTER, DEFAULT_THREAD_AFTER};
pub use code::{CodeSpace, CodeStats, FuncHandle, CODE_BASE};
pub use cost::CostModel;
pub use error::VmError;
pub use host::{HostCall, NoHost};
pub use interp::{ExitStatus, Vm};
pub use isa::{FReg, Insn, Op, Reg};
pub use mem::Memory;
pub use predecode::{ExecEngine, ExecStats, SharedTranslation};
pub use threaded::{handler_table_sizes, HANDLER_TABLE_SIZE, SUPER_HANDLERS};
