//! Flat byte-addressed data memory.
//!
//! Layout: addresses below [`Memory::FIRST_VALID`] are a null guard page;
//! static data and the heap grow upward from there; the stack starts at the
//! top and grows downward. Code lives in a separate space (addresses with
//! bit 31 set, see [`crate::code`]), so a data access to a code address
//! faults — and vice versa.

use crate::error::VmError;

/// The machine's data memory plus a bump allocator for static data,
/// closures and `malloc`-style host calls.
#[derive(Clone, Debug)]
pub struct Memory {
    bytes: Vec<u8>,
    brk: u64,
    /// Lowest stack address observed; the allocator refuses to cross it.
    stack_floor: u64,
}

impl Memory {
    /// Lowest valid data address (everything below is a null guard).
    pub const FIRST_VALID: u64 = 0x1000;

    /// Creates a memory of `size` bytes. The initial stack pointer is
    /// [`Memory::stack_top`]; the heap break starts at
    /// [`Memory::FIRST_VALID`].
    ///
    /// # Panics
    ///
    /// Panics if `size` is smaller than 64 KiB or not 16-byte aligned, or
    /// would collide with the code space (bit 31).
    pub fn new(size: usize) -> Memory {
        assert!(size >= 1 << 16, "memory too small");
        assert_eq!(size % 16, 0, "memory size must be 16-byte aligned");
        assert!((size as u64) < (1 << 31), "memory would overlap code space");
        Memory {
            bytes: vec![0; size],
            brk: Memory::FIRST_VALID,
            stack_floor: size as u64,
        }
    }

    /// Size of the memory in bytes.
    pub fn size(&self) -> usize {
        self.bytes.len()
    }

    /// The initial stack pointer (one past the highest valid address,
    /// 16-byte aligned).
    pub fn stack_top(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// Current heap break (next address the allocator would hand out).
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Bump-allocates `size` bytes with the given power-of-two `align`,
    /// zero-filled. Used for globals, string literals, closures and the
    /// `C run-time `malloc` host call.
    ///
    /// # Errors
    ///
    /// Returns [`VmError::BadAddress`] when the heap would run into the
    /// stack red zone (top 1 MiB is reserved for the stack).
    pub fn alloc(&mut self, size: u64, align: u64) -> Result<u64, VmError> {
        debug_assert!(align.is_power_of_two());
        let base = (self.brk + align - 1) & !(align - 1);
        let end = base
            .checked_add(size)
            .ok_or(VmError::BadAddress(u64::MAX))?;
        // Reserve the top of memory for the stack: 1 MiB, or a quarter of
        // a smaller memory.
        let reserve = (self.stack_floor / 4).min(1 << 20);
        let red_zone = self.stack_floor - reserve;
        if end > red_zone {
            return Err(VmError::BadAddress(end));
        }
        self.brk = end;
        Ok(base)
    }

    #[inline]
    fn check(&self, addr: u64, len: u64) -> Result<usize, VmError> {
        if addr < Memory::FIRST_VALID
            || addr
                .checked_add(len)
                .is_none_or(|e| e > self.bytes.len() as u64)
        {
            return Err(VmError::BadAddress(addr));
        }
        if !addr.is_multiple_of(len) {
            return Err(VmError::Misaligned(addr));
        }
        Ok(addr as usize)
    }

    /// Loads an unsigned byte.
    ///
    /// # Errors
    ///
    /// Faults ([`VmError::BadAddress`]) outside the mapped range.
    #[inline]
    pub fn load_u8(&self, addr: u64) -> Result<u8, VmError> {
        let a = self.check(addr, 1)?;
        Ok(self.bytes[a])
    }

    /// Loads an unsigned 16-bit halfword.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range or misaligned addresses.
    #[inline]
    pub fn load_u16(&self, addr: u64) -> Result<u16, VmError> {
        let a = self.check(addr, 2)?;
        Ok(u16::from_le_bytes(self.bytes[a..a + 2].try_into().unwrap()))
    }

    /// Loads an unsigned 32-bit word.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range or misaligned addresses.
    #[inline]
    pub fn load_u32(&self, addr: u64) -> Result<u32, VmError> {
        let a = self.check(addr, 4)?;
        Ok(u32::from_le_bytes(self.bytes[a..a + 4].try_into().unwrap()))
    }

    /// Loads a 64-bit doubleword.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range or misaligned addresses.
    #[inline]
    pub fn load_u64(&self, addr: u64) -> Result<u64, VmError> {
        let a = self.check(addr, 8)?;
        Ok(u64::from_le_bytes(self.bytes[a..a + 8].try_into().unwrap()))
    }

    /// Loads an `f64`.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range or misaligned addresses.
    #[inline]
    pub fn load_f64(&self, addr: u64) -> Result<f64, VmError> {
        Ok(f64::from_bits(self.load_u64(addr)?))
    }

    /// Stores a byte.
    ///
    /// # Errors
    ///
    /// Faults outside the mapped range.
    #[inline]
    pub fn store_u8(&mut self, addr: u64, v: u8) -> Result<(), VmError> {
        let a = self.check(addr, 1)?;
        self.bytes[a] = v;
        Ok(())
    }

    /// Stores a 16-bit halfword.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range or misaligned addresses.
    #[inline]
    pub fn store_u16(&mut self, addr: u64, v: u16) -> Result<(), VmError> {
        let a = self.check(addr, 2)?;
        self.bytes[a..a + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Stores a 32-bit word.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range or misaligned addresses.
    #[inline]
    pub fn store_u32(&mut self, addr: u64, v: u32) -> Result<(), VmError> {
        let a = self.check(addr, 4)?;
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Stores a 64-bit doubleword.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range or misaligned addresses.
    #[inline]
    pub fn store_u64(&mut self, addr: u64, v: u64) -> Result<(), VmError> {
        let a = self.check(addr, 8)?;
        self.bytes[a..a + 8].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Stores an `f64`.
    ///
    /// # Errors
    ///
    /// Faults on out-of-range or misaligned addresses.
    #[inline]
    pub fn store_f64(&mut self, addr: u64, v: f64) -> Result<(), VmError> {
        self.store_u64(addr, v.to_bits())
    }

    /// Copies `bytes` into memory starting at `addr` (host-side helper for
    /// loaders and workload setup).
    ///
    /// # Errors
    ///
    /// Faults if the destination range is not mapped.
    pub fn write_bytes(&mut self, addr: u64, bytes: &[u8]) -> Result<(), VmError> {
        if addr < Memory::FIRST_VALID || addr as usize + bytes.len() > self.bytes.len() {
            return Err(VmError::BadAddress(addr));
        }
        let a = addr as usize;
        self.bytes[a..a + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads `len` bytes starting at `addr` (host-side helper).
    ///
    /// # Errors
    ///
    /// Faults if the source range is not mapped.
    pub fn read_bytes(&self, addr: u64, len: usize) -> Result<&[u8], VmError> {
        if addr < Memory::FIRST_VALID || addr as usize + len > self.bytes.len() {
            return Err(VmError::BadAddress(addr));
        }
        Ok(&self.bytes[addr as usize..addr as usize + len])
    }

    /// Reads a NUL-terminated string starting at `addr` (host-side helper
    /// for `printf`-style host calls).
    ///
    /// # Errors
    ///
    /// Faults if the string runs off the end of memory.
    pub fn read_cstr(&self, addr: u64) -> Result<String, VmError> {
        let mut out = Vec::new();
        let mut a = addr;
        loop {
            let b = self.load_u8(a)?;
            if b == 0 {
                break;
            }
            out.push(b);
            a += 1;
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_widths() {
        let mut m = Memory::new(1 << 16);
        let a = m.alloc(64, 8).unwrap();
        m.store_u8(a, 0xab).unwrap();
        assert_eq!(m.load_u8(a).unwrap(), 0xab);
        m.store_u16(a + 2, 0xbeef).unwrap();
        assert_eq!(m.load_u16(a + 2).unwrap(), 0xbeef);
        m.store_u32(a + 4, 0xdead_beef).unwrap();
        assert_eq!(m.load_u32(a + 4).unwrap(), 0xdead_beef);
        m.store_u64(a + 8, u64::MAX - 3).unwrap();
        assert_eq!(m.load_u64(a + 8).unwrap(), u64::MAX - 3);
        m.store_f64(a + 16, -1.5).unwrap();
        assert_eq!(m.load_f64(a + 16).unwrap(), -1.5);
    }

    #[test]
    fn null_page_faults() {
        let m = Memory::new(1 << 16);
        assert_eq!(m.load_u32(0), Err(VmError::BadAddress(0)));
        assert_eq!(m.load_u32(0xffc), Err(VmError::BadAddress(0xffc)));
        assert!(m.load_u32(0x1000).is_ok());
    }

    #[test]
    fn misaligned_access_faults() {
        let m = Memory::new(1 << 16);
        assert_eq!(m.load_u32(0x1002), Err(VmError::Misaligned(0x1002)));
        assert_eq!(m.load_u64(0x1004), Err(VmError::Misaligned(0x1004)));
        assert!(m.load_u8(0x1003).is_ok());
    }

    #[test]
    fn out_of_bounds_faults() {
        let m = Memory::new(1 << 16);
        let top = m.stack_top();
        assert_eq!(m.load_u8(top), Err(VmError::BadAddress(top)));
        assert_eq!(m.load_u64(top - 4), Err(VmError::BadAddress(top - 4)));
    }

    #[test]
    fn alloc_respects_alignment_and_zero_fills() {
        let mut m = Memory::new(1 << 16);
        m.alloc(3, 1).unwrap();
        let a = m.alloc(16, 16).unwrap();
        assert_eq!(a % 16, 0);
        assert_eq!(m.load_u64(a).unwrap(), 0);
    }

    #[test]
    fn alloc_refuses_to_hit_stack_red_zone() {
        let mut m = Memory::new(1 << 21); // 2 MiB: top 512 KiB reserved
        assert!(m.alloc((1 << 21) - (1 << 19), 8).is_err());
        assert!(m.alloc(1 << 20, 8).is_ok());
    }

    #[test]
    fn cstr_round_trip() {
        let mut m = Memory::new(1 << 16);
        let a = m.alloc(16, 1).unwrap();
        m.write_bytes(a, b"hello\0").unwrap();
        assert_eq!(m.read_cstr(a).unwrap(), "hello");
    }
}
