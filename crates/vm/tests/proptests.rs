//! Property tests for the machine substrate: encode/decode round trips
//! for every instruction format, arithmetic semantics against Rust
//! references, and memory round trips.

use proptest::prelude::*;
use tcc_vm::isa::{Format, Insn, Op};
use tcc_vm::regs::{A0, A1};
use tcc_vm::{CodeSpace, Vm};

fn any_op() -> impl Strategy<Value = Op> {
    prop::sample::select(Op::ALL.to_vec())
}

proptest! {
    #[test]
    fn encode_decode_round_trips(
        op in any_op(),
        rd in 0u8..32,
        rs1 in 0u8..32,
        rs2 in 0u8..32,
        imm14 in -(1i32 << 13)..(1 << 13),
        imm19 in -(1i32 << 18)..(1 << 18),
        imm24 in -(1i32 << 23)..(1 << 23),
    ) {
        let insn = match op.format() {
            Format::R => Insn { op, rd, rs1, rs2, imm: 0 },
            Format::I => Insn { op, rd, rs1, rs2: 0, imm: imm14 },
            Format::J => Insn { op, rd: 0, rs1: 0, rs2: 0, imm: imm24 },
            Format::S => Insn { op, rd, rs1: 0, rs2: 0, imm: imm19 },
        };
        let decoded = Insn::decode(insn.encode()).expect("assigned opcode");
        prop_assert_eq!(insn, decoded);
    }

    #[test]
    fn raw_words_never_panic_on_decode(word in any::<u32>()) {
        // Decoding is total: Ok or a BadOpcode error, never a panic.
        let _ = Insn::decode(word);
    }

    #[test]
    fn w_arithmetic_matches_rust(a in any::<i32>(), b in any::<i32>()) {
        let cases: Vec<(Op, Option<i64>)> = vec![
            (Op::Addw, Some(a.wrapping_add(b) as i64)),
            (Op::Subw, Some(a.wrapping_sub(b) as i64)),
            (Op::Mulw, Some(a.wrapping_mul(b) as i64)),
            (Op::Sllw, Some(a.wrapping_shl(b as u32 & 31) as i64)),
            (Op::Sraw, Some((a >> (b as u32 & 31)) as i64)),
            (Op::Srlw, Some(((a as u32) >> (b as u32 & 31)) as i32 as i64)),
            (Op::Sltw, Some(i64::from(a < b))),
            (Op::Sltuw, Some(i64::from((a as u32) < (b as u32)))),
            (
                Op::Divw,
                if b == 0 { None } else { Some(a.wrapping_div(b) as i64) },
            ),
            (
                Op::Remw,
                if b == 0 { None } else { Some(a.wrapping_rem(b) as i64) },
            ),
        ];
        for (op, expect) in cases {
            let Some(expect) = expect else { continue };
            // i32::MIN / -1 traps in Rust too; wrapping_div covers it,
            // and the VM wraps as well, so no special-casing needed.
            let mut cs = CodeSpace::new();
            let f = cs.begin_function("t");
            cs.push(Insn::r(op, A0, A0, A1));
            cs.push(Insn::ret());
            let addr = cs.finish_function(f).expect("seals");
            let mut vm = Vm::new(cs, 1 << 20);
            let got = vm
                .call(addr, &[a as i64 as u64, b as i64 as u64])
                .expect("executes");
            prop_assert_eq!(got as i64, expect, "{:?} {} {}", op, a, b);
        }
    }

    #[test]
    fn li_round_trips_any_i64(v in any::<i64>()) {
        let mut cs = CodeSpace::new();
        let mut asm = tcc_vcode::Asm::new(&mut cs, "t");
        asm.li(A0, v);
        asm.emit(Insn::ret());
        let addr = asm.finish();
        let mut vm = Vm::new(cs, 1 << 20);
        prop_assert_eq!(vm.call(addr, &[]).expect("runs") as i64, v);
    }

    #[test]
    fn memory_round_trips(
        vals in prop::collection::vec(any::<u64>(), 1..32),
    ) {
        let mut mem = tcc_vm::Memory::new(1 << 20);
        let base = mem.alloc(8 * vals.len() as u64, 8).expect("fits");
        for (i, v) in vals.iter().enumerate() {
            mem.store_u64(base + 8 * i as u64, *v).expect("in range");
        }
        for (i, v) in vals.iter().enumerate() {
            prop_assert_eq!(mem.load_u64(base + 8 * i as u64).expect("in range"), *v);
        }
    }

    #[test]
    fn mul_imm_strength_reduction_random(x in any::<i32>(), imm in any::<i32>()) {
        let mut cs = CodeSpace::new();
        let mut asm = tcc_vcode::Asm::new(&mut cs, "t");
        asm.mul_imm(tcc_rt::ValKind::W, A0, A0, imm as i64);
        asm.emit(Insn::ret());
        let addr = asm.finish();
        let mut vm = Vm::new(cs, 1 << 20);
        let got = vm.call(addr, &[x as i64 as u64]).expect("runs");
        prop_assert_eq!(got as i64, x.wrapping_mul(imm) as i64);
    }
}
