//! Facade crate for the tcc reproduction. Re-exports every subsystem.
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured record.

pub use tcc as tickc_core;
pub use tcc_cache as cache;
pub use tcc_front as front;
pub use tcc_icode as icode;
pub use tcc_mir as mir;
pub use tcc_obs as obs;
pub use tcc_rt as rt;
pub use tcc_suite as suite;
pub use tcc_vcode as vcode;
pub use tcc_vm as vm;
