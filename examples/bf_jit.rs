//! A Brainfuck JIT written in `C — "small language compilation" (§6.2)
//! pushed further: the compiler for the little language is itself a `C
//! program, composing one cspec per source instruction and pairing
//! `label()`/`jump()` objects for the bracket loops.
//!
//! Run with: `cargo run --release --example bf_jit`

use tcc::Session;

const SRC: &str = r#"
unsigned char cells[30000];
char prog[512];

long bf_compile(void) {
    int vspec dp = local(int);
    void cspec c = `{ dp = 0; };
    void cspec starts[64];
    void cspec ends[64];
    int sp = 0;
    int i;
    for (i = 0; prog[i] != 0; i++) {
        int ch = prog[i];
        if (ch == '>') c = `{ @c; dp = dp + 1; };
        else if (ch == '<') c = `{ @c; dp = dp - 1; };
        else if (ch == '+') c = `{ @c; cells[dp] = cells[dp] + 1; };
        else if (ch == '-') c = `{ @c; cells[dp] = cells[dp] - 1; };
        else if (ch == '.') c = `{ @c; putchar(cells[dp]); };
        else if (ch == '[') {
            void cspec ls = label();
            void cspec le = label();
            starts[sp] = ls;
            ends[sp] = le;
            sp = sp + 1;
            c = `{ @c; ls; if (cells[dp] == 0) jump(le); };
        }
        else if (ch == ']') {
            sp = sp - 1;
            void cspec ls = starts[sp];
            void cspec le = ends[sp];
            c = `{ @c; if (cells[dp] != 0) jump(ls); le; };
        }
    }
    if (sp != 0) return 0;
    return (long)compile(c, void);
}

void bf_run(long fp) {
    void (*g)(void) = (void (*)(void))fp;
    (*g)();
}

int cell(int i) { return cells[i]; }
"#;

/// The classic: prints "Hello World!\n".
const HELLO: &str = "++++++++[>++++[>++>+++>+++>+<<<<-]>+>+>->>+[<]<-]>>.>---.\
                     +++++++..+++.>>.<-.<.+++.------.--------.>>+.>++.";

fn main() {
    let mut s = Session::with_defaults(SRC).expect("compiles");

    // Ship the Brainfuck source into the `C program's `prog` array.
    let prog_addr = s.global_addr("prog").expect("prog exists");
    let mut bytes = HELLO.as_bytes().to_vec();
    bytes.push(0);
    s.vm.state_mut()
        .mem
        .write_bytes(prog_addr, &bytes)
        .expect("fits");

    let fp = s.call("bf_compile", &[]).expect("jit compiles");
    assert_ne!(fp, 0, "unbalanced brackets");
    let st = s.dyn_stats();
    println!(
        "jitted {} brainfuck instructions into {} machine instructions \
         ({} closures composed, {} ns)",
        HELLO.len(),
        st.generated_insns,
        st.closures,
        st.total_ns
    );

    s.call("bf_run", &[fp]).expect("jitted code runs");
    print!("output: {}", s.output());
    assert_eq!(s.output(), "Hello World!\n");

    s.reset_counters();
    s.call("bf_run", &[fp]).expect("runs again");
    println!("second run: {} VM cycles", s.cycles());
}
