//! Executable data structures (the paper's `binary` benchmark as a
//! demo): compile a sorted array into a tree of nested compare-against-
//! immediate instructions — "lookup into the array involves neither
//! memory loads nor looping overhead" (§6.2).
//!
//! Run with: `cargo run --example exec_ds`

use tcc::Session;
use tcc_suite::{benchmarks, BLUR_SMALL};

fn main() {
    let bench = benchmarks(BLUR_SMALL)
        .into_iter()
        .find(|b| b.name == "binary")
        .expect("binary benchmark exists");

    let mut s = Session::with_defaults(bench.src).expect("compiles");
    (bench.setup)(&mut s);

    // The array holds 3, 13, 23, …, 153. Compile it into code.
    let fp = (bench.compile_dyn)(&mut s);
    let st = s.dyn_stats();
    println!(
        "compiled a 16-entry sorted array into {} instructions (no loads, no loops)",
        st.generated_insns
    );

    if let Some(d) = s.disassemble_addr(fp) {
        let head: Vec<&str> = d.lines().take(14).collect();
        println!("generated code (head):\n{}\n  ...", head.join("\n"));
    }

    // Search via the executable data structure.
    for key in [3u64, 73, 153, 42] {
        let idx = s.call_addr(fp, &[key]).expect("search runs") as i64 as i32;
        match idx {
            -1 => println!("  key {key:3}: not found"),
            i => println!("  key {key:3}: index {i}"),
        }
    }

    // Compare cycles with the classic loop-based binary search.
    s.reset_counters();
    (bench.run_static)(&mut s);
    let static_cycles = s.cycles();
    s.reset_counters();
    (bench.run_dyn)(&mut s, fp);
    let dyn_cycles = s.cycles();
    println!(
        "two lookups: static search {static_cycles} cycles, executable data structure \
         {dyn_cycles} cycles ({:.2}x)",
        static_cycles as f64 / dyn_cycles as f64
    );
}
