//! The observability layer from the outside: compile and run a `C
//! program, then dump `Session::metrics()` as JSON.
//!
//! ```text
//! cargo run --release --example metrics [composition-depth]
//! ```
//!
//! The optional depth (default 200) stresses closure composition: the
//! runtime compiles arbitrarily deep chains up to the composition
//! limit and reports a clean error past it.

use tcc::{Backend, Config, Session, Strategy};

fn main() {
    let depth: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("depth must be a number"))
        .unwrap_or(200);

    let mut s = Session::new(
        r#"
        long mk(int n) {
            int cspec c = `1;
            int i;
            for (i = 0; i < n; i++) c = `(c + 1);
            return (long)compile(c, int);
        }
        "#,
        Config {
            backend: Backend::Icode {
                strategy: Strategy::LinearScan,
            },
            ..Config::default()
        },
    )
    .expect("compiles");

    match s.call("mk", &[depth]) {
        Ok(fp) => {
            let v = s.call_addr(fp, &[]).expect("generated code runs");
            println!("depth {depth}: compiled, f() = {v}");
        }
        Err(e) => println!("depth {depth}: error: {e}"),
    }

    println!("{}", s.metrics().to_json().pretty());
}
