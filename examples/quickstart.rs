//! Quickstart: the paper's §3 examples, end to end.
//!
//! Run with: `cargo run --example quickstart`

use tcc::{Backend, Config, Session, Strategy};

fn main() {
    // 1. Hello world: specify a void cspec, compile it, call it.
    let mut s = Session::with_defaults(
        r#"
        void hello(void) {
            void cspec c = `{ printf("hello world\n"); };
            void (*fp)(void) = compile(c, void);
            (*fp)();
        }
    "#,
    )
    .expect("compiles");
    s.call("hello", &[]).expect("runs");
    print!("{}", s.output());

    // 2. The $ operator binds run-time constants at specification time.
    let mut s = Session::with_defaults(
        r#"
        void demo(void) {
            void (*fp)(void);
            int x = 1;
            fp = compile(`{ printf("$x = %d, x = %d\n", $x, x); }, void);
            x = 14;
            (*fp)();   /* prints "$x = 1, x = 14" */
        }
    "#,
    )
    .expect("compiles");
    s.call("demo", &[]).expect("runs");
    print!("{}", s.output());

    // 3. Composition: cspecs splice into other cspecs.
    let mut s = Session::with_defaults(
        r#"
        int nine(void) {
            int cspec c1 = `4, cspec c2 = `5;
            int cspec c = `(c1 + c2);
            int (*f)(void) = compile(c, int);
            return (*f)();
        }
    "#,
    )
    .expect("compiles");
    println!(
        "composed `(c1 + c2) evaluates to {}",
        s.call("nine", &[]).expect("runs")
    );

    // 4. Pick your dynamic back end: VCODE (fast codegen) or ICODE
    //    (better code). Same program, different trade-off.
    let src = r#"
        int spec_mul(int a) {
            int vspec x = param(int, 0);
            int cspec c = `(x * $a);      /* strength-reduced at compile */
            int (*f)(void) = compile(c, int);
            return (*f)(100);
        }
    "#;
    for (name, backend) in [
        ("vcode", Backend::Vcode { unchecked: false }),
        (
            "icode/linear-scan",
            Backend::Icode {
                strategy: Strategy::LinearScan,
            },
        ),
    ] {
        let mut s = Session::new(
            src,
            Config {
                backend,
                ..Config::default()
            },
        )
        .expect("compiles");
        let v = s.call("spec_mul", &[8]).expect("runs");
        let st = s.dyn_stats();
        println!(
            "{name:>18}: 100*8 = {v}, generated {} instructions in {} ns",
            st.generated_insns, st.total_ns
        );
    }
}
