//! A dynamic query compiler (the paper's `query` benchmark as a demo):
//! a tiny boolean query language over records, either interpreted with
//! switch statements or compiled to machine code at run time.
//!
//! Run with: `cargo run --release --example query_compiler`

use tcc::Session;
use tcc_suite::{benchmarks, BLUR_SMALL};

fn main() {
    let bench = benchmarks(BLUR_SMALL)
        .into_iter()
        .find(|b| b.name == "query")
        .expect("query benchmark exists");

    let mut s = Session::with_defaults(bench.src).expect("compiles");
    (bench.setup)(&mut s);

    // Interpret the query 5 times.
    s.reset_counters();
    let hits = (bench.run_static)(&mut s);
    let interp_cycles = s.cycles();
    println!("interpreted query: {hits} matching records, {interp_cycles} cycles/run");

    // Compile the query once, then run the generated code.
    let fp = (bench.compile_dyn)(&mut s);
    let st = s.dyn_stats();
    println!(
        "dynamic compile: {} machine instructions in {} ns",
        st.generated_insns, st.total_ns
    );

    s.reset_counters();
    let hits2 = (bench.run_dyn)(&mut s, fp);
    let dyn_cycles = s.cycles();
    println!("compiled query:    {hits2} matching records, {dyn_cycles} cycles/run");
    assert_eq!(hits, hits2, "both paths must agree");

    println!(
        "speedup: {:.2}x  (the paper reports query paying for itself after one run)",
        interp_cycles as f64 / dyn_cycles as f64
    );
}
