//! The xv Blur experiment (§6.2): convolution with a run-time-sized
//! all-ones kernel. Dynamic code generation unrolls the kernel loops and
//! hardwires the image dimensions.
//!
//! Run with: `cargo run --release --example blur` (add `--small` for a
//! 64×48 image instead of 640×480).

use tcc_suite::{benchmarks, measure, ns_per_cycle, report, BLUR_FULL, BLUR_SMALL};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let dims = if small { BLUR_SMALL } else { BLUR_FULL };
    println!("blur on a {}x{} image", dims.0, dims.1);

    let nspc = ns_per_cycle();
    let bench = benchmarks(dims)
        .into_iter()
        .find(|b| b.name == "blur")
        .expect("blur exists");
    let m = measure(&bench);
    print!("{}", report::blur_report(&m, nspc));
}
