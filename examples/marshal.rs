//! Dynamic function-call construction (the paper's `mshl` benchmark as a
//! demo): generate marshaling code from a format string known only at
//! run time — "this ability goes beyond mere performance: ANSI C simply
//! does not provide mechanisms for dynamically constructing function
//! calls with varying numbers of arguments" (§6.2).
//!
//! Run with: `cargo run --example marshal`

use tcc::Session;

const SRC: &str = r#"
int out[8];
char fmt3[4] = "iii";
char fmt5[6] = "iiiii";

/* Builds a marshaling function for `fmt`: one dynamic parameter per
   format character, each stored into the output vector. The parameter
   list length is decided at run time — the `C param() special form. */
long make_marshaler(char *fmt) {
    void cspec body = `{};
    int i;
    int n = 0;
    for (i = 0; fmt[i] != 0; i++) {
        if (fmt[i] == 'i') {
            int vspec p = param(int, n);
            body = `{ @body; out[$n] = p; };
            n = n + 1;
        }
    }
    void cspec all = `{ body; return $n; };
    return (long)compile(all, int);
}

long make3(void) { return make_marshaler(fmt3); }
long make5(void) { return make_marshaler(fmt5); }

int run3(long fp) { int (*g)(void) = (int (*)(void))fp; return (*g)(7, 8, 9); }
int run5(long fp) { int (*g)(void) = (int (*)(void))fp; return (*g)(1, 2, 3, 4, 5); }

int get_out(int i) { return out[i]; }
"#;

fn main() {
    let mut s = Session::with_defaults(SRC).expect("compiles");

    // A 3-argument marshaler and a 5-argument marshaler from the same
    // generator — the signatures differ at run time.
    let m3 = s.call("make3", &[]).expect("compiles dynamically");
    let n = s.call("run3", &[m3]).expect("runs");
    let vals: Vec<u64> = (0..n)
        .map(|i| s.call("get_out", &[i]).expect("reads out"))
        .collect();
    println!("marshal \"iii\"  ({n} words): {vals:?}");

    let m5 = s.call("make5", &[]).expect("compiles dynamically");
    let n = s.call("run5", &[m5]).expect("runs");
    let vals: Vec<u64> = (0..n)
        .map(|i| s.call("get_out", &[i]).expect("reads out"))
        .collect();
    println!("marshal \"iiiii\" ({n} words): {vals:?}");

    let st = s.dyn_stats();
    println!(
        "({} dynamic compilations, {} instructions generated)",
        st.compiles, st.generated_insns
    );
}
