//! End-to-end semantics of the dynamic-code lifecycle manager
//! (`tcc-cache`): compile memoization, code-space reclamation under a
//! byte budget, stale-code faulting, pinning, and placement jitter —
//! all driven through the public `Session` API.

use tickc::tickc_core::{Config, Error, Session};
use tickc::vm::VmError;

/// One dynamic-compilation site specializing on `$n`: every distinct
/// argument is a distinct closure, every repeat an identical one.
const MAKE: &str = r#"
long make(int n) {
    int cspec c = `($n * 3 + 4);
    int (*f)(void) = compile(c, int);
    return (long)f;
}
"#;

fn session(config: Config) -> Session {
    Session::new(MAKE, config).expect("compiles")
}

/// A `mk()` whose closure body is long enough that a real compile
/// dwarfs a fingerprint walk (for the hit-economics test).
fn big_src() -> String {
    let mut body = String::new();
    for i in 0..120 {
        let (d, s) = if i % 2 == 0 { ("a", "b") } else { ("b", "a") };
        body.push_str(&format!("        {d} = {d} * 3 + {s} + {};\n", i % 7 + 1));
    }
    format!(
        r#"
int seed = 5;
long mk(void) {{
    void cspec c = `{{
        int a;
        int b;
        a = $seed;
        b = 2;
{body}        return a + b;
    }};
    return (long)compile(c, int);
}}
"#
    )
}

#[test]
fn repeated_compile_returns_the_same_pointer() {
    let mut s = session(Config::default());
    let first = s.call("make", &[7]).unwrap();
    for _ in 0..4 {
        assert_eq!(s.call("make", &[7]).unwrap(), first, "hit changed pointer");
    }
    // A different `$`-constant is a different closure.
    let other = s.call("make", &[8]).unwrap();
    assert_ne!(first, other);
    let m = s.metrics().cache;
    assert_eq!(m.hits, 4);
    assert_eq!(m.misses, 2);
    assert_eq!(m.uncacheable, 0);
    // Cached code still runs (and was compiled from the right constant).
    assert_eq!(s.call_addr(first, &[]).unwrap(), 25);
    assert_eq!(s.call_addr(other, &[]).unwrap(), 28);
}

#[test]
fn disabling_the_cache_recompiles_every_time() {
    let mut s = session(Config {
        cache: false,
        ..Config::default()
    });
    let a = s.call("make", &[7]).unwrap();
    let b = s.call("make", &[7]).unwrap();
    assert_ne!(a, b, "uncached compiles emit fresh code");
    let m = s.metrics();
    assert_eq!(m.dynamic.compiles, 2);
    assert_eq!(m.cache.hits, 0);
    assert_eq!(m.cache.misses, 0);
}

#[test]
fn cache_hits_are_an_order_of_magnitude_cheaper_than_recompiles() {
    // The acceptance bar: answering a compile from cache costs at least
    // 10x less than re-running the CGF. `ns_saved` accumulates the
    // original compile time per hit; `hit_ns` the fingerprint + lookup
    // time actually spent answering hits.
    let mut s = Session::new(&big_src(), Config::default()).expect("compiles");
    for _ in 0..20 {
        s.call("mk", &[]).unwrap();
    }
    let m = s.metrics().cache;
    assert_eq!(m.hits, 19);
    assert!(
        m.ns_saved >= 10 * m.hit_ns,
        "hits not 10x cheaper: saved {} ns vs spent {} ns",
        m.ns_saved,
        m.hit_ns
    );
}

#[test]
fn budget_bounds_live_code_and_books_balance() {
    let budget = 2048u64;
    let mut s = session(Config {
        code_budget: Some(budget),
        ..Config::default()
    });
    // Drive well past the budget with distinct closures.
    for n in 0..200u64 {
        s.call("make", &[n]).unwrap();
    }
    let m = s.metrics().cache;
    assert!(m.evictions > 0, "budget never forced an eviction");
    assert!(
        m.bytes_live <= budget,
        "live cached code {} exceeds budget {budget}",
        m.bytes_live
    );
    // The cache's books agree with the code space's own accounting:
    // everything the cache reclaimed is words the arena marked free.
    let stats = s.vm.state().code.stats();
    assert_eq!(
        m.bytes_reclaimed,
        stats.reclaimed_words as u64 * 4,
        "cache and code space disagree on reclaimed bytes"
    );
    assert!(stats.free_words > 0, "reclaimed space not in the free list");

    // Steady state: freed ranges are reused, so another round of churn
    // barely grows the arena (identical-size functions fit old holes).
    let before = s.vm.state().code.stats().total_words;
    for n in 200..400u64 {
        s.call("make", &[n]).unwrap();
    }
    let after = s.vm.state().code.stats().total_words;
    assert!(
        after <= before + before / 4,
        "code space not bounded under churn: {before} -> {after} words"
    );
}

#[test]
fn evicted_code_faults_stale_when_called() {
    let mut s = session(Config {
        code_budget: Some(256),
        ..Config::default()
    });
    let first = s.call("make", &[0]).unwrap();
    assert_eq!(s.call_addr(first, &[]).unwrap(), 4);
    // Distinct closures until budget pressure evicts the LRU entry —
    // which is `first`: it was inserted earliest and never looked up
    // again. Probe immediately, while its range is still on the free
    // list (a later compile may legitimately recycle the range, after
    // which the address aliases fresh code — pin to prevent that).
    let mut n = 1u64;
    while s.metrics().cache.evictions == 0 {
        s.call("make", &[n]).unwrap();
        n += 1;
        assert!(n < 1000, "budget never forced an eviction");
    }
    let err = s.call_addr(first, &[]).unwrap_err();
    assert!(
        matches!(err, Error::Vm(VmError::StaleCode(_))),
        "stale pointer should fault cleanly, got: {err}"
    );
}

#[test]
fn placement_jitter_is_deterministic_per_seed() {
    let drive = |seed: Option<u64>| -> Vec<u64> {
        let mut s = session(Config {
            placement_jitter: seed,
            ..Config::default()
        });
        (0..4u64).map(|n| s.call("make", &[n]).unwrap()).collect()
    };
    // Same seed, same session history: identical layout.
    assert_eq!(drive(Some(42)), drive(Some(42)));
    // Different seeds: different padding, so the layouts diverge.
    assert_ne!(drive(Some(42)), drive(Some(43)));
    // And jitter shifts code away from the unjittered layout.
    assert_ne!(drive(Some(42)), drive(None));
}
