//! Statement-level differential fuzzing: random `C programs with locals,
//! assignments, bounded loops and branches, executed through the five
//! compilation paths and compared against a host-side reference
//! interpreter.

use proptest::prelude::*;
use tickc::mir::OptLevel;
use tickc::tickc_core::{Backend, Config, Session, Strategy as Alloc};

/// Variables: v0..v3 (locals), p (parameter), r (run-time constant).
const NVARS: usize = 4;

#[derive(Clone, Debug)]
enum Val {
    Var(usize),
    Param,
    Rtc,
    Lit(i32),
}

#[derive(Clone, Debug)]
enum Op2 {
    Add,
    Sub,
    Mul,
    Xor,
    And,
}

#[derive(Clone, Debug)]
enum St {
    /// `vK = a op b;`
    Assign(usize, Op2, Val, Val),
    /// `if (a < b) { .. } else { .. }`
    If(Val, Val, Vec<St>, Vec<St>),
    /// `for (i = 0; i < n; i++) { body }` over a dedicated counter; `n`
    /// is a small literal so unrolling and real loops both trigger
    /// depending on context.
    Loop(u8, Vec<St>),
}

fn val_strategy() -> impl Strategy<Value = Val> {
    prop_oneof![
        (0..NVARS).prop_map(Val::Var),
        Just(Val::Param),
        Just(Val::Rtc),
        (-20i32..20).prop_map(Val::Lit),
    ]
}

fn op_strategy() -> impl Strategy<Value = Op2> {
    prop::sample::select(vec![Op2::Add, Op2::Sub, Op2::Mul, Op2::Xor, Op2::And])
}

fn st_strategy() -> impl Strategy<Value = St> {
    let assign = (0..NVARS, op_strategy(), val_strategy(), val_strategy())
        .prop_map(|(d, op, a, b)| St::Assign(d, op, a, b));
    assign.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            3 => (0..NVARS, op_strategy(), val_strategy(), val_strategy())
                .prop_map(|(d, op, a, b)| St::Assign(d, op, a, b)),
            1 => (
                val_strategy(),
                val_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(a, b, t, e)| St::If(a, b, t, e)),
            1 => (1u8..6, prop::collection::vec(inner, 1..3))
                .prop_map(|(n, body)| St::Loop(n, body)),
        ]
    })
}

fn val_c(v: &Val, dollar: bool) -> String {
    match v {
        Val::Var(i) => format!("v{i}"),
        Val::Param => "p".into(),
        Val::Rtc => {
            if dollar {
                "$r".into()
            } else {
                "r".into()
            }
        }
        Val::Lit(c) => format!("({c})"),
    }
}

fn op_c(op: &Op2) -> &'static str {
    match op {
        Op2::Add => "+",
        Op2::Sub => "-",
        Op2::Mul => "*",
        Op2::Xor => "^",
        Op2::And => "&",
    }
}

fn st_c(s: &St, dollar: bool, depth: usize, counter: &mut usize) -> String {
    let pad = "    ".repeat(depth + 1);
    match s {
        St::Assign(d, op, a, b) => format!(
            "{pad}v{d} = {} {} {};\n",
            val_c(a, dollar),
            op_c(op),
            val_c(b, dollar)
        ),
        St::If(a, b, t, e) => {
            let mut out = format!("{pad}if ({} < {}) {{\n", val_c(a, dollar), val_c(b, dollar));
            for s in t {
                out.push_str(&st_c(s, dollar, depth + 1, counter));
            }
            out.push_str(&format!("{pad}}} else {{\n"));
            for s in e {
                out.push_str(&st_c(s, dollar, depth + 1, counter));
            }
            out.push_str(&format!("{pad}}}\n"));
            out
        }
        St::Loop(n, body) => {
            let k = *counter;
            *counter += 1;
            let mut out = format!("{pad}for (k{k} = 0; k{k} < {n}; k{k}++) {{\n");
            for s in body {
                out.push_str(&st_c(s, dollar, depth + 1, counter));
            }
            out.push_str(&format!("{pad}}}\n"));
            out
        }
    }
}

fn count_loops(sts: &[St]) -> usize {
    sts.iter()
        .map(|s| match s {
            St::Assign(..) => 0,
            St::If(_, _, t, e) => count_loops(t) + count_loops(e),
            St::Loop(_, b) => 1 + count_loops(b),
        })
        .sum()
}

fn eval_val(v: &Val, vars: &[i32], p: i32, r: i32) -> i32 {
    match v {
        Val::Var(i) => vars[*i],
        Val::Param => p,
        Val::Rtc => r,
        Val::Lit(c) => *c,
    }
}

fn eval_sts(sts: &[St], vars: &mut [i32], p: i32, r: i32) {
    for s in sts {
        match s {
            St::Assign(d, op, a, b) => {
                let (x, y) = (eval_val(a, vars, p, r), eval_val(b, vars, p, r));
                vars[*d] = match op {
                    Op2::Add => x.wrapping_add(y),
                    Op2::Sub => x.wrapping_sub(y),
                    Op2::Mul => x.wrapping_mul(y),
                    Op2::Xor => x ^ y,
                    Op2::And => x & y,
                };
            }
            St::If(a, b, t, e) => {
                if eval_val(a, vars, p, r) < eval_val(b, vars, p, r) {
                    eval_sts(t, vars, p, r);
                } else {
                    eval_sts(e, vars, p, r);
                }
            }
            St::Loop(n, body) => {
                for _ in 0..*n {
                    eval_sts(body, vars, p, r);
                }
            }
        }
    }
}

fn program_for(sts: &[St]) -> String {
    let nloops = count_loops(sts);
    let decl_ks = |prefix: &str| -> String {
        (0..nloops)
            .map(|k| format!("{prefix}int k{k};\n"))
            .collect()
    };
    let decl_vs =
        |prefix: &str| -> String { (0..NVARS).map(|i| format!("{prefix}int v{i};\n")).collect() };
    let init_vs: String = (0..NVARS)
        .map(|i| format!("    v{i} = {};\n", i as i32 + 1))
        .collect();
    let mut c0 = 0usize;
    let static_body: String = sts.iter().map(|s| st_c(s, false, 0, &mut c0)).collect();
    let mut c1 = 0usize;
    let dyn_body: String = sts.iter().map(|s| st_c(s, true, 0, &mut c1)).collect();
    let sum: String = (0..NVARS)
        .map(|i| format!(" + v{i}"))
        .collect::<String>()
        .trim_start_matches(" + ")
        .to_string();
    format!(
        r#"
int static_f(int p, int r) {{
{}{}
{init_vs}{static_body}    return {sum};
}}
long dyn_compile(int r) {{
    int vspec p = param(int, 0);
    void cspec c = `{{
{}{}
{init_vs}{dyn_body}        return {sum};
    }};
    return (long)compile(c, int);
}}
int dyn_run(long fp, int p) {{
    int (*g)(void) = (int (*)(void))fp;
    return (*g)(p);
}}
"#,
        decl_vs("    "),
        decl_ks("    "),
        decl_vs("        "),
        decl_ks("        "),
    )
}

fn check(sts: &[St], p: i32, r: i32) -> Result<(), TestCaseError> {
    let mut vars: Vec<i32> = (1..=NVARS as i32).collect();
    eval_sts(sts, &mut vars, p, r);
    let expect: i32 = vars.iter().fold(0i32, |a, &v| a.wrapping_add(v));
    let src = program_for(sts);

    for opt in [OptLevel::Naive, OptLevel::Optimizing] {
        let mut s = Session::new(
            &src,
            Config {
                static_opt: opt,
                ..Config::default()
            },
        )
        .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"));
        let got = s
            .call("static_f", &[p as i64 as u64, r as i64 as u64])
            .expect("runs");
        prop_assert_eq!(got as i64, expect as i64, "static {:?}\n{}", opt, src);
    }
    for backend in [
        Backend::Vcode { unchecked: false },
        Backend::Icode {
            strategy: Alloc::LinearScan,
        },
        Backend::Icode {
            strategy: Alloc::GraphColor,
        },
    ] {
        let mut s = Session::new(
            &src,
            Config {
                backend: backend.clone(),
                ..Config::default()
            },
        )
        .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"));
        let fp = s
            .call("dyn_compile", &[r as i64 as u64])
            .expect("dynamic compile");
        let got = s
            .call("dyn_run", &[fp, p as i64 as u64])
            .expect("dynamic run");
        prop_assert_eq!(got as i64, expect as i64, "dynamic {:?}\n{}", backend, src);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn five_paths_agree_on_random_statement_programs(
        sts in prop::collection::vec(st_strategy(), 1..6),
        p in -100i32..100,
        r in -100i32..100,
    ) {
        check(&sts, p, r)?;
    }
}

#[test]
fn fixed_statement_regressions() {
    use St::*;
    use Val::*;
    // Loop whose body uses $r (run-time constant propagation under
    // unrolling), nested loops, if inside loop.
    let cases: Vec<Vec<St>> = vec![
        vec![Loop(4, vec![Assign(0, Op2::Add, Var(0), Rtc)])],
        vec![Loop(
            3,
            vec![Loop(2, vec![Assign(1, Op2::Mul, Var(1), Lit(2))])],
        )],
        vec![Loop(
            5,
            vec![If(
                Var(0),
                Rtc,
                vec![Assign(0, Op2::Add, Var(0), Lit(3))],
                vec![],
            )],
        )],
        vec![If(
            Param,
            Lit(0),
            vec![Assign(2, Op2::Sub, Lit(0), Param)],
            vec![Assign(2, Op2::Add, Var(2), Param)],
        )],
    ];
    for sts in cases {
        check(&sts, 7, -3).expect("agrees");
        check(&sts, -50, 13).expect("agrees");
    }
}
