//! Property test: the ICODE peephole pipeline (dead-code elimination,
//! jump threading, fusion-aware scheduling) preserves program results.
//!
//! Random ICODE buffers with forward control flow — conditional skips,
//! empty jump chains that the threader collapses, and dead pure code —
//! are compiled twice, with the cleanup passes off and on, and both
//! functions must return the same value for the same inputs. The
//! peephole-on function also runs under the reference decode-per-step
//! engine to tie the property back to the differential contract.

use proptest::prelude::*;
use tcc_icode::{IInsn, IOp, IcodeBuf, IcodeCompiler, Strategy as Alloc};
use tcc_rt::ValKind;
use tcc_vcode::ops::BinOp;
use tcc_vcode::CodeSink;
use tcc_vm::{CodeSpace, ExecEngine, Vm};

/// One structural element of a random program.
#[derive(Clone, Debug)]
enum Step {
    /// Push a constant value.
    Const(i32),
    /// Push `vals[a] op vals[b]` (non-faulting op set, shifts masked).
    Bin(BinOp, usize, usize),
    /// `acc = init; if vals[c] != 0 { acc = acc op vals[a] } ; push acc`
    /// — a forward conditional skip: both arms define `acc`, so the
    /// value vector stays consistent on every path.
    CondAdd(usize, i32, BinOp, usize),
    /// An empty forward jump chain of the given length (1-3 hops) with
    /// dead pure definitions between the hops. No semantic effect;
    /// jump threading and DCE should dissolve it entirely.
    JmpChain(u8),
}

fn binop() -> impl Strategy<Value = BinOp> {
    use BinOp::*;
    prop::sample::select(vec![
        Add, Sub, Mul, And, Or, Xor, Shl, Shr, ShrU, Eq, Ne, Lt, LtU, Le, Gt, Ge,
    ])
}

fn steps() -> impl Strategy<Value = Vec<Step>> {
    prop::collection::vec(
        prop_oneof![
            (-1000i32..1000).prop_map(Step::Const),
            (binop(), 0usize..64, 0usize..64).prop_map(|(op, a, b)| Step::Bin(op, a, b)),
            (0usize..64, -100i32..100, binop(), 0usize..64)
                .prop_map(|(c, i, op, a)| Step::CondAdd(c, i, op, a)),
            (1u8..4).prop_map(Step::JmpChain),
        ],
        4..32,
    )
}

/// Applies one binary op with the same shift normalization the builder
/// emits. Returns `None` on overflow-class failures (never happens for
/// the selected op set, but `eval_int` is fallible).
fn eval(op: BinOp, x: i64, y: i64) -> Option<i64> {
    if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::ShrU) {
        op.eval_int(ValKind::W, x, y & 31)
    } else {
        op.eval_int(ValKind::W, x, y)
    }
}

/// Host-side reference semantics.
fn reference(steps: &[Step], p0: i32, p1: i32) -> Option<i32> {
    let mut vals: Vec<i64> = vec![p0 as i64, p1 as i64];
    for s in steps {
        match s {
            Step::Const(c) => vals.push(*c as i64),
            Step::Bin(op, a, b) => {
                let (x, y) = (vals[a % vals.len()], vals[b % vals.len()]);
                vals.push(eval(*op, x, y)?);
            }
            Step::CondAdd(c, init, op, a) => {
                let mut acc = *init as i64;
                if vals[c % vals.len()] != 0 {
                    acc = eval(*op, acc, vals[a % vals.len()])?;
                }
                vals.push(acc);
            }
            Step::JmpChain(_) => {}
        }
    }
    let mut out: i64 = 0;
    for v in &vals {
        out = eval(BinOp::Add, out, *v)?;
    }
    Some(out as i32)
}

/// Builds the equivalent ICODE program.
fn build(b: &mut IcodeBuf, steps: &[Step]) {
    let p0 = b.param(0, ValKind::W);
    let p1 = b.param(1, ValKind::W);
    let mut vals = vec![p0, p1];
    for step in steps {
        match step {
            Step::Const(c) => {
                let d = b.temp_saved(ValKind::W);
                b.li(d, *c as i64);
                vals.push(d);
            }
            Step::Bin(op, a, x) => {
                let (a, x) = (vals[*a % vals.len()], vals[*x % vals.len()]);
                let d = b.temp_saved(ValKind::W);
                if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::ShrU) {
                    let t = b.temp(ValKind::W);
                    b.bin_imm(BinOp::And, ValKind::W, t, x, 31);
                    b.bin(*op, ValKind::W, d, a, t);
                    b.release(t);
                } else {
                    b.bin(*op, ValKind::W, d, a, x);
                }
                vals.push(d);
            }
            Step::CondAdd(c, init, op, a) => {
                let cond = vals[*c % vals.len()];
                let arg = vals[*a % vals.len()];
                let acc = b.temp_saved(ValKind::W);
                let skip = b.label();
                b.li(acc, *init as i64);
                b.br_false(cond, skip);
                if matches!(op, BinOp::Shl | BinOp::Shr | BinOp::ShrU) {
                    let t = b.temp(ValKind::W);
                    b.bin_imm(BinOp::And, ValKind::W, t, arg, 31);
                    b.bin(*op, ValKind::W, acc, acc, t);
                    b.release(t);
                } else {
                    b.bin(*op, ValKind::W, acc, acc, arg);
                }
                b.bind(skip);
                vals.push(acc);
            }
            Step::JmpChain(hops) => {
                // jmp l0; dead; l0: jmp l1; dead; ...; l_last:
                let labels: Vec<_> = (0..*hops).map(|_| b.label()).collect();
                for (i, l) in labels.iter().enumerate() {
                    b.jmp(*l);
                    let dead = b.temp(ValKind::W);
                    b.li(dead, i as i64);
                    b.bind(*l);
                }
            }
        }
    }
    let acc = b.temp(ValKind::W);
    b.li(acc, 0);
    for &v in &vals {
        b.bin(BinOp::Add, ValKind::W, acc, acc, v);
    }
    b.ret_val(ValKind::W, acc);
}

/// Compiles and runs, returning (result, modeled cycles, retired
/// instructions).
fn compile_and_run(
    steps: &[Step],
    peephole: bool,
    schedule: bool,
    engine: ExecEngine,
    p0: i32,
    p1: i32,
) -> (i32, u64, u64) {
    let mut buf = IcodeBuf::new();
    build(&mut buf, steps);
    let mut code = CodeSpace::new();
    let mut c = IcodeCompiler::new(Alloc::LinearScan);
    c.run_peephole = peephole;
    c.schedule_fusion = schedule;
    let r = c.compile(&mut code, "prog", buf);
    let mut vm = Vm::new(code, 1 << 20);
    vm.set_engine(engine);
    let out = vm
        .call(r.func.addr, &[p0 as i64 as u64, p1 as i64 as u64])
        .expect("runs") as i32;
    (out, vm.cycles(), vm.insns())
}

/// Builds the same program shape as [`build`] but interleaves pinned
/// instructions — loads, stores, faulting divides, and a host call —
/// between the pure steps, so the structural property test exercises
/// the scheduler's ordering constraints densely. The result is only
/// inspected, never executed, so the memory addresses and divisors
/// need not be meaningful.
fn build_structural(b: &mut IcodeBuf, steps: &[Step], seed: i32) {
    use tcc_vcode::ops::{LoadKind, StoreKind};
    let p = b.temp_saved(ValKind::P);
    b.li(p, 0x2000);
    let p0 = b.param(0, ValKind::W);
    let p1 = b.param(1, ValKind::W);
    let mut vals = vec![p0, p1];
    for (k, step) in steps.iter().enumerate() {
        match step {
            Step::Const(c) => {
                let d = b.temp_saved(ValKind::W);
                b.li(d, *c as i64);
                vals.push(d);
            }
            Step::Bin(op, a, x) => {
                let (a, x) = (vals[*a % vals.len()], vals[*x % vals.len()]);
                let d = b.temp_saved(ValKind::W);
                b.bin(*op, ValKind::W, d, a, x);
                vals.push(d);
            }
            Step::CondAdd(c, init, op, a) => {
                let cond = vals[*c % vals.len()];
                let arg = vals[*a % vals.len()];
                let acc = b.temp_saved(ValKind::W);
                let skip = b.label();
                b.li(acc, *init as i64);
                b.br_false(cond, skip);
                b.bin(*op, ValKind::W, acc, acc, arg);
                b.bind(skip);
                vals.push(acc);
            }
            Step::JmpChain(_) => {}
        }
        let x = vals[(k + seed as usize % 7) % vals.len()];
        match k % 4 {
            0 => b.store(StoreKind::I32, x, p, (k as i32 * 8).into()),
            1 => {
                let v = b.temp_saved(ValKind::W);
                b.load(LoadKind::I32, v, p, (k as i32 * 8).into());
                vals.push(v);
            }
            2 => {
                let d = b.temp_saved(ValKind::W);
                b.bin(BinOp::Div, ValKind::W, d, x, x);
                vals.push(d);
            }
            _ => b.hcall(1, &[(ValKind::W, x)], None),
        }
    }
    let acc = b.temp(ValKind::W);
    b.li(acc, 0);
    for &v in &vals {
        b.bin(BinOp::Add, ValKind::W, acc, acc, v);
    }
    b.ret_val(ValKind::W, acc);
}

/// Memory-touching, faulting, or call-related: the scheduler must keep
/// these in their original relative order.
fn is_pinned(i: &IInsn) -> bool {
    match i.op {
        IOp::Load(_) | IOp::Store(_) | IOp::Hcall | IOp::CallAddr | IOp::CallInd | IOp::Arg(_) => {
            true
        }
        IOp::Bin(op) | IOp::BinImm(op) => {
            matches!(op, BinOp::Div | BinOp::DivU | BinOp::Rem | BinOp::RemU)
        }
        _ => false,
    }
}

/// True/anti/output dependence between an earlier `x` and a later `y`.
fn vreg_dep(x: &IInsn, y: &IInsn) -> bool {
    if let Some(d) = x.def() {
        if y.uses().into_iter().flatten().any(|u| u == d) || y.def() == Some(d) {
            return true;
        }
    }
    if let Some(yd) = y.def() {
        if x.uses().into_iter().flatten().any(|u| u == yd) {
            return true;
        }
    }
    false
}

/// Maps each original position to its position in the scheduled order,
/// matching duplicate (identical) instructions first-come first-served.
fn match_permutation(orig: &[IInsn], new: &[IInsn]) -> Vec<usize> {
    let mut taken = vec![false; new.len()];
    orig.iter()
        .map(|o| {
            let k = new
                .iter()
                .enumerate()
                .position(|(k, n)| !taken[k] && n == o)
                .expect("permutation: every instruction survives");
            taken[k] = true;
            k
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn peephole_passes_preserve_results(
        steps in steps(),
        p0 in -1000i32..1000,
        p1 in -1000i32..1000,
    ) {
        let expect = reference(&steps, p0, p1).expect("op set never faults");
        let (raw, _, _) = compile_and_run(&steps, false, false, ExecEngine::Threaded, p0, p1);
        let cleaned = compile_and_run(&steps, true, true, ExecEngine::Threaded, p0, p1);
        let cleaned_ref =
            compile_and_run(&steps, true, true, ExecEngine::DecodePerStep, p0, p1);
        prop_assert_eq!(raw, expect, "peephole-off compile diverges from host reference");
        prop_assert_eq!(cleaned.0, expect, "peephole-on compile diverges from host reference");
        prop_assert_eq!(cleaned_ref.0, expect, "engines disagree on the cleaned program");
        prop_assert_eq!(
            (cleaned.1, cleaned.2),
            (cleaned_ref.1, cleaned_ref.2),
            "threaded and reference engines disagree on cycles/insns"
        );
        // The fusion-aware scheduler alone (same DCE + jump threading,
        // reordering on vs off) may not change the result. Exact
        // machine-level cycles/insns are NOT compared across that
        // toggle: register allocation runs after scheduling, so a
        // shortened live range can legitimately drop a spill (the
        // scheduler making the program cheaper). Cycle/insn exactness
        // is pinned where it is sound — between engines on the same
        // compiled program (above) and structurally on the ICODE
        // permutation (`dag_schedule_is_dependence_respecting`).
        let unsched = compile_and_run(&steps, true, false, ExecEngine::Threaded, p0, p1);
        prop_assert_eq!(
            cleaned.0,
            unsched.0,
            "schedule_for_fusion changed the program result"
        );
    }

    /// The DAG scheduler's output is a dependence-respecting
    /// permutation of each basic block: block boundaries stay put, the
    /// instruction multiset is unchanged, memory-touching / faulting /
    /// call instructions keep their exact relative order, and every
    /// pair of data-dependent instructions keeps its orientation.
    #[test]
    fn dag_schedule_is_dependence_respecting(
        steps in steps(),
        p0 in -1000i32..1000,
    ) {
        let mut buf = IcodeBuf::new();
        build_structural(&mut buf, &steps, p0);
        let orig = buf.insns.clone();
        tcc_icode::peephole::schedule_for_fusion(&mut buf);
        let new = &buf.insns;
        prop_assert_eq!(new.len(), orig.len(), "scheduler dropped or duplicated code");

        // Boundaries (labels, loop markers) and terminators never move.
        for (k, o) in orig.iter().enumerate() {
            let fixed = matches!(o.op, IOp::Label | IOp::LoopBegin | IOp::LoopEnd)
                || o.is_terminator();
            if fixed {
                prop_assert_eq!(&new[k], o, "boundary or terminator moved");
            }
        }

        // Same multiset of instructions.
        let key = |i: &IInsn| format!("{i:?}");
        let mut a: Vec<String> = orig.iter().map(key).collect();
        let mut b: Vec<String> = new.iter().map(key).collect();
        a.sort();
        b.sort();
        prop_assert_eq!(a, b, "scheduled block is not a permutation");

        // Pinned instructions (memory, faulting div/rem, calls, host
        // calls, argument setup) keep their exact relative order.
        let pinned: Vec<&IInsn> = orig.iter().filter(|i| is_pinned(i)).collect();
        let pinned_new: Vec<&IInsn> = new.iter().filter(|i| is_pinned(i)).collect();
        prop_assert_eq!(pinned, pinned_new, "pinned instructions reordered");

        // Every data-dependent pair keeps its orientation. Duplicate
        // instructions are matched in order, which is sound because
        // equal instructions are interchangeable.
        let perm = match_permutation(&orig, new);
        for i in 0..orig.len() {
            for j in i + 1..orig.len() {
                if vreg_dep(&orig[i], &orig[j]) {
                    prop_assert!(
                        perm[i] < perm[j],
                        "dependence inverted: {:?} must stay before {:?}",
                        orig[i],
                        orig[j]
                    );
                }
            }
        }
    }
}
