//! Property tests for the adaptive tiering engine at the session level:
//! per-function promotion sequences are monotone and keyed to the
//! configured thresholds, epoch bumps (here: code-budget evictions)
//! demote everything and reset run counts, freed-then-hot functions
//! fault `StaleCode` no matter which tier they had reached, and the
//! `AdaptiveMetrics` accounting invariants hold across arbitrary
//! compile/run/evict interleavings.

use proptest::prelude::*;
use tickc::tickc_core::{Config, Error, Session};
use tickc::vm::{ExecEngine, Tier, VmError, DEFAULT_FUSE_AFTER, DEFAULT_THREAD_AFTER};

/// `mk(n)` compiles a distinct closure per `n` (the `$`-bound seed
/// changes the fingerprint) so budget pressure eventually evicts the
/// least-recently-used result; `run` executes one.
const SRC: &str = r#"
int seed = 0;
long mk(int n) {
    seed = n;
    int cspec c = `(
        $seed * 3 + $seed * 5 + $seed * 7 + $seed * 9 +
        $seed * 11 + $seed * 13 + $seed * 17 + $seed * 19 +
        $seed * 23 + $seed * 29 + $seed * 31 + $seed * 37);
    return (long)compile(c, int);
}
int run(long fp) {
    int (*g)(void) = (int (*)(void))fp;
    return (*g)();
}
"#;

/// n × (3+5+7+9+11+13+17+19+23+29+31+37).
const PRIME_SUM: u64 = 204;

fn session(fuse_after: u32, thread_after: u32, budget: Option<u64>) -> Session {
    Session::new(
        SRC,
        Config {
            code_budget: budget,
            adaptive_fuse_after: fuse_after,
            adaptive_thread_after: thread_after,
            ..Config::default()
        },
    )
    .expect("compiles")
}

/// The tier a function must occupy while executing its `k`-th run
/// (1-indexed): the decision is made at entry against the `k - 1`
/// completed prior runs.
fn expected_tier(k: u64, fuse_after: u32, thread_after: u32) -> Tier {
    let prior = k - 1;
    if prior >= u64::from(thread_after) {
        Tier::Threaded
    } else if prior >= u64::from(fuse_after) {
        Tier::Fused
    } else {
        Tier::Decode
    }
}

/// Ordered thresholds: 1 <= fuse_after <= thread_after <= 8.
fn thresholds() -> impl Strategy<Value = (u32, u32)> {
    (1u32..5, 0u32..5).prop_map(|(f, extra)| (f, (f + extra).min(8)))
}

/// Compiles fresh closures until the code budget evicts at least one
/// entry (an epoch bump), returning how many eviction rounds happened.
fn force_eviction(s: &mut Session, start_seed: &mut u64) -> u64 {
    let before = s.metrics().cache.evictions;
    while s.metrics().cache.evictions == before {
        s.call("mk", &[*start_seed]).expect("later compile");
        *start_seed += 1;
        assert!(*start_seed < 1000, "budget never forced an eviction");
    }
    s.metrics().cache.evictions - before
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// (a) Per-function tier sequences are monotone, track the
    /// configured thresholds exactly, and reset to tier 0 with a fresh
    /// run count after an epoch bump.
    #[test]
    fn promotion_sequences_are_monotone_and_reset_on_epoch_bump(
        ft in thresholds(),
        runs in 1u64..14,
    ) {
        let (fuse_after, thread_after) = ft;
        let mut s = session(fuse_after, thread_after, Some(512));
        let fp = s.call("mk", &[1]).expect("compile");
        prop_assert!(s.pin_code(fp), "compiled closure is pinnable");
        prop_assert_eq!(s.vm.adaptive_tier(fp), None, "never entered yet");
        let mut last = Tier::Decode;
        for k in 1..=runs {
            prop_assert_eq!(s.call("run", &[fp]).expect("runs"), PRIME_SUM);
            let (tier, count) = s.vm.adaptive_tier(fp).expect("tracked after a run");
            prop_assert_eq!(count, k, "run counter advances by one per entry");
            prop_assert!(tier >= last, "tier never moves down between runs");
            prop_assert_eq!(
                tier,
                expected_tier(k, fuse_after, thread_after),
                "tier at run {} under thresholds {}/{}",
                k,
                fuse_after,
                thread_after
            );
            last = tier;
        }
        // Epoch bump: evicting any entry frees code, which must demote
        // every function — even the pinned survivor — and restart its
        // run count from scratch.
        let mut seed = 2;
        force_eviction(&mut s, &mut seed);
        let demotions = s.metrics().adaptive.demotions;
        if last > Tier::Decode {
            prop_assert!(demotions >= last as u64, "the hot survivor was demoted");
        }
        prop_assert_eq!(s.call("run", &[fp]).expect("still pinned"), PRIME_SUM);
        let (tier, count) = s.vm.adaptive_tier(fp).expect("re-tracked");
        prop_assert_eq!(count, 1, "run count restarts after the bump");
        prop_assert_eq!(tier, expected_tier(1, fuse_after, thread_after));
    }

    /// (b) A freed-then-called function faults `StaleCode` at its own
    /// address regardless of the tier it had climbed to.
    #[test]
    fn freed_hot_function_faults_stale_at_every_tier(
        ft in thresholds(),
        warm_runs in 0u64..10,
    ) {
        let (fuse_after, thread_after) = ft;
        let mut s = session(fuse_after, thread_after, Some(256));
        let fp = s.call("mk", &[1]).expect("compile");
        for _ in 0..warm_runs {
            prop_assert_eq!(s.call("run", &[fp]).expect("warm run"), PRIME_SUM);
        }
        if warm_runs > 0 {
            let (tier, _) = s.vm.adaptive_tier(fp).expect("tracked");
            prop_assert_eq!(tier, expected_tier(warm_runs, fuse_after, thread_after));
        }
        // `run` never touches the compile cache, so `fp` stays LRU and
        // is the first entry the budget reclaims.
        let mut seed = 2;
        force_eviction(&mut s, &mut seed);
        match s.call("run", &[fp]) {
            Err(Error::Vm(VmError::StaleCode(addr))) => prop_assert_eq!(addr, fp),
            other => {
                return Err(TestCaseError::fail(format!(
                    "expected StaleCode({fp:#x}) after {warm_runs} warm runs, got {other:?}"
                )))
            }
        }
    }

    /// (c) `AdaptiveMetrics` accounting invariants across arbitrary
    /// compile/run/evict interleavings: tier run counts partition the
    /// total, promotions never trail demotions, and both only grow.
    #[test]
    fn metrics_invariants_hold_across_interleavings(
        ft in thresholds(),
        script in prop::collection::vec((0u8..3, 1u64..6), 1..12),
    ) {
        let (fuse_after, thread_after) = ft;
        let mut s = session(fuse_after, thread_after, Some(512));
        let mut fps: Vec<u64> = Vec::new();
        let mut seed = 1u64;
        let (mut last_promotions, mut last_demotions) = (0u64, 0u64);
        for (op, n) in script {
            match op {
                0 => {
                    fps.push(s.call("mk", &[seed]).expect("compile"));
                    seed += 1;
                }
                1 => {
                    if let Some(&fp) = fps.last() {
                        for _ in 0..n {
                            // May be StaleCode if churn evicted it.
                            let _ = s.call("run", &[fp]);
                        }
                    }
                }
                _ => {
                    force_eviction(&mut s, &mut seed);
                    fps.clear();
                }
            }
            let a = s.metrics().adaptive;
            prop_assert_eq!(
                a.runs_tier0 + a.runs_tier1 + a.runs_tier2,
                a.total_runs,
                "tier run counts partition total_runs"
            );
            prop_assert!(a.promotions >= a.demotions, "cannot lose more levels than gained");
            prop_assert!(a.promotions >= last_promotions, "promotions are monotone");
            prop_assert!(a.demotions >= last_demotions, "demotions are monotone");
            last_promotions = a.promotions;
            last_demotions = a.demotions;
        }
    }
}

#[test]
fn adaptive_is_the_default_engine_and_reports_metrics() {
    let mut s = Session::with_defaults(SRC).expect("compiles");
    assert!(
        matches!(
            s.vm.engine(),
            ExecEngine::Adaptive { fuse_after, thread_after, background }
                if fuse_after == DEFAULT_FUSE_AFTER
                    && thread_after == DEFAULT_THREAD_AFTER
                    && !background
        ),
        "Config::default must select adaptive tiering, got {:?}",
        s.vm.engine()
    );
    let fp = s.call("mk", &[1]).expect("compile");
    for _ in 0..10 {
        assert_eq!(s.call("run", &[fp]).expect("runs"), PRIME_SUM);
    }
    let m = s.metrics();
    assert!(m.adaptive.total_runs > 0, "runs were counted");
    assert!(
        m.adaptive.promotions >= 2,
        "ten repeat runs cross both default thresholds"
    );
    assert!(
        m.adaptive.runs_tier2 > 0,
        "steady state reached the threaded tier"
    );
    let json = m.to_json().pretty();
    for key in [
        "\"adaptive\"",
        "\"promotions\"",
        "\"demotions\"",
        "\"promoted_run_rate\"",
    ] {
        assert!(json.contains(key), "session JSON missing {key}");
    }
}
