//! Integration tests: every concrete `C example from the paper text,
//! run end to end through the facade crate.

use tickc::tickc_core::{Backend, Config, Session, Strategy};

fn backends() -> Vec<Backend> {
    vec![
        Backend::Vcode { unchecked: false },
        Backend::Icode {
            strategy: Strategy::LinearScan,
        },
        Backend::Icode {
            strategy: Strategy::GraphColor,
        },
    ]
}

fn run(src: &str, func: &str, args: &[u64], backend: Backend) -> (u64, String) {
    let mut s = Session::new(
        src,
        Config {
            backend,
            ..Config::default()
        },
    )
    .unwrap_or_else(|e| panic!("compile failed: {e}"));
    let v = s
        .call(func, args)
        .unwrap_or_else(|e| panic!("run failed: {e}"));
    (v, s.output())
}

#[test]
fn section3_hello_world() {
    for b in backends() {
        let (_, out) = run(
            r#"
            void f(void) {
                void cspec hello = `{ printf("hello world\n"); };
                (*compile(hello, void))();
            }
            "#,
            "f",
            &[],
            b,
        );
        assert_eq!(out, "hello world\n");
    }
}

#[test]
fn section3_compose_c1_c2() {
    for b in backends() {
        let (v, _) = run(
            r#"
            int f(void) {
                int cspec c1 = `4, cspec c2 = `5;
                int cspec c = `(c1 + c2);
                return (*compile(c, int))();
            }
            "#,
            "f",
            &[],
            b,
        );
        assert_eq!(v, 9);
    }
}

#[test]
fn section3_dollar_example_verbatim_semantics() {
    for b in backends() {
        let (_, out) = run(
            r#"
            void f(void) {
                void (*fp)(void);
                int x = 1;
                fp = compile(`{ printf("$x = %d, x = %d\n", $x, x); }, void);
                x = 14;
                (*fp)();
            }
            "#,
            "f",
            &[],
            b,
        );
        assert_eq!(out, "$x = 1, x = 14\n");
    }
}

#[test]
fn section42_closure_example() {
    // int j, k; int cspec i = `5; void cspec c = `{ return i + $j * k; };
    for b in backends() {
        let (v, _) = run(
            r#"
            int f(void) {
                int j;
                int k;
                j = 6;
                k = 7;
                int cspec i = `5;
                void cspec c = `{ return i + $j * k; };
                int (*g)(void) = compile(c, int);
                j = 1000;  /* $j already bound */
                k = 8;     /* free variable: current value read at run time */
                return (*g)();
            }
            "#,
            "f",
            &[],
            b,
        );
        assert_eq!(v, 5 + 6 * 8);
    }
}

#[test]
fn section44_dot_product_both_formulations() {
    // Formulation 1: explicit composition at specification time.
    let compose = r#"
        int row[6] = {2, 0, 3, 0, 0, 4};
        int col[6] = {1, 2, 3, 4, 5, 6};
        int n = 6;
        int f(void) {
            int k;
            int cspec sum = `0;
            for (k = 0; k < n; k++)
                if (row[k])
                    sum = `(sum + col[$k] * $row[k]);
            void cspec code = `{ return sum; };
            return (*compile(code, int))();
        }
    "#;
    // Formulation 2: dynamic loop unrolling inside the tick body.
    let unroll = r#"
        int row[6] = {2, 0, 3, 0, 0, 4};
        int col[6] = {1, 2, 3, 4, 5, 6};
        int n = 6;
        int f(void) {
            void cspec code = `{
                int k;
                int sum;
                sum = 0;
                for (k = 0; k < $n; k++)
                    if ($row[k])
                        sum = sum + col[k] * $row[k];
                return sum;
            };
            return (*compile(code, int))();
        }
    "#;
    let expect = 2 + 3 * 3 + 4 * 6;
    for b in backends() {
        let (v1, _) = run(compose, "f", &[], b.clone());
        let (v2, _) = run(unroll, "f", &[], b);
        assert_eq!(v1 as i64, expect);
        assert_eq!(v2 as i64, expect);
    }
}

#[test]
fn figure2_register_pressure_scenario() {
    // { s = `1; } then s = `(x + s) iterated n times — the paper's
    // Figure 2 expression-tree chain. Both back ends must stay correct
    // even when the chain exceeds the register file.
    for b in backends() {
        let (v, _) = run(
            r#"
            int f(int x) {
                int cspec s = `1;
                int i;
                for (i = 0; i < 40; i++) s = `(x + s);
                return (*compile(`(s), int))();
            }
            "#,
            "f",
            &[3],
            b,
        );
        assert_eq!(v, 1 + 40 * 3);
    }
}

#[test]
fn run_time_constant_folding_collapses_mixed_expressions() {
    // "code generating functions contain code to evaluate any parts of an
    // expression consisting of static and run-time constants" (§4.4)
    for b in backends() {
        let mut s = Session::new(
            r#"
            int f(int a) {
                int cspec c = `(1 + 2 * $a + 3);
                return (*compile(c, int))();
            }
            "#,
            Config {
                backend: b,
                ..Config::default()
            },
        )
        .expect("compiles");
        assert_eq!(s.call("f", &[10]).unwrap(), 24);
        // 1 + 2*10 + 3 folds to a single constant: generated code is a
        // handful of instructions (li + ret + prologue), far fewer than
        // an evaluation chain.
        assert!(
            s.dyn_stats().generated_insns <= 16,
            "expected folded code, got {} instructions",
            s.dyn_stats().generated_insns
        );
    }
}

#[test]
fn dynamic_code_with_many_compiles_is_isolated() {
    // Each compile produces an independent function; earlier ones keep
    // working (the code space only grows).
    let mut s = Session::with_defaults(
        r#"
        long make(int k) {
            int cspec c = `($k * 100 + 7);
            return (long)compile(c, int);
        }
        int call_it(long fp) {
            int (*g)(void) = (int (*)(void))fp;
            return (*g)();
        }
        "#,
    )
    .expect("compiles");
    let fps: Vec<u64> = (0..10)
        .map(|k| s.call("make", &[k]).expect("make"))
        .collect();
    for (k, fp) in fps.iter().enumerate() {
        assert_eq!(s.call("call_it", &[*fp]).unwrap(), k as u64 * 100 + 7);
    }
}

#[test]
fn vm_cost_model_is_deterministic() {
    let src = r#"
        int f(int n) {
            int s = 0;
            int i;
            for (i = 0; i < n; i++) s += i * i;
            return s;
        }
    "#;
    let cycles = |_: ()| {
        let mut s = Session::with_defaults(src).expect("compiles");
        s.reset_counters();
        s.call("f", &[1000]).expect("runs");
        s.cycles()
    };
    assert_eq!(
        cycles(()),
        cycles(()),
        "cycle counts must be exactly reproducible"
    );
}
