//! System-level differential testing: random `C programs run through all
//! five compilation paths — lcc-like static, gcc-like static, and
//! dynamic code under VCODE, ICODE/linear-scan, ICODE/graph-coloring —
//! must all compute the value the host-side reference computes.

use proptest::prelude::*;
use tickc::mir::OptLevel;
use tickc::tickc_core::{Backend, Config, Session, Strategy as Alloc};

/// A random arithmetic expression over: a parameter `p`, a run-time
/// constant `$r` (bound to `rval`), and integer literals.
#[derive(Clone, Debug)]
enum E {
    Param,
    Rtc,
    Lit(i32),
    Add(Box<E>, Box<E>),
    Sub(Box<E>, Box<E>),
    Mul(Box<E>, Box<E>),
    And(Box<E>, Box<E>),
    Xor(Box<E>, Box<E>),
    Shl(Box<E>, u8),
    Cond(Box<E>, Box<E>, Box<E>),
}

fn expr_strategy() -> impl Strategy<Value = E> {
    let leaf = prop_oneof![Just(E::Param), Just(E::Rtc), (-50i32..50).prop_map(E::Lit),];
    leaf.prop_recursive(4, 24, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Add(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Sub(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Mul(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| E::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), 0u8..5).prop_map(|(a, s)| E::Shl(Box::new(a), s)),
            (inner.clone(), inner.clone(), inner).prop_map(|(c, a, b)| E::Cond(
                Box::new(c),
                Box::new(a),
                Box::new(b)
            )),
        ]
    })
}

fn to_c(e: &E) -> String {
    match e {
        E::Param => "p".into(),
        E::Rtc => "$r".into(),
        E::Lit(v) => format!("({v})"),
        E::Add(a, b) => format!("({} + {})", to_c(a), to_c(b)),
        E::Sub(a, b) => format!("({} - {})", to_c(a), to_c(b)),
        E::Mul(a, b) => format!("({} * {})", to_c(a), to_c(b)),
        E::And(a, b) => format!("({} & {})", to_c(a), to_c(b)),
        E::Xor(a, b) => format!("({} ^ {})", to_c(a), to_c(b)),
        E::Shl(a, s) => format!("({} << {s})", to_c(a)),
        E::Cond(c, a, b) => format!("({} ? {} : {})", to_c(c), to_c(a), to_c(b)),
    }
}

fn eval(e: &E, p: i32, r: i32) -> i32 {
    match e {
        E::Param => p,
        E::Rtc => r,
        E::Lit(v) => *v,
        E::Add(a, b) => eval(a, p, r).wrapping_add(eval(b, p, r)),
        E::Sub(a, b) => eval(a, p, r).wrapping_sub(eval(b, p, r)),
        E::Mul(a, b) => eval(a, p, r).wrapping_mul(eval(b, p, r)),
        E::And(a, b) => eval(a, p, r) & eval(b, p, r),
        E::Xor(a, b) => eval(a, p, r) ^ eval(b, p, r),
        E::Shl(a, s) => eval(a, p, r).wrapping_shl(*s as u32),
        E::Cond(c, a, b) => {
            if eval(c, p, r) != 0 {
                eval(a, p, r)
            } else {
                eval(b, p, r)
            }
        }
    }
}

fn program_for(e: &E) -> String {
    let c_expr = to_c(e);
    // `p` is a real parameter in the static version and a dynamic vspec
    // parameter in the `C version; `r` is a plain parameter statically
    // and a $-bound run-time constant dynamically.
    let static_expr = c_expr.replace("$r", "r");
    format!(
        r#"
int static_f(int p, int r) {{ return {static_expr}; }}
long dyn_compile(int r) {{
    int vspec p = param(int, 0);
    int cspec c = `({c_expr});
    return (long)compile(c, int);
}}
int dyn_run(long fp, int p) {{
    int (*g)(void) = (int (*)(void))fp;
    return (*g)(p);
}}
"#
    )
}

fn check_all_paths(e: &E, p: i32, r: i32) -> Result<(), TestCaseError> {
    let expect = eval(e, p, r);
    let src = program_for(e);
    // Static paths.
    for opt in [OptLevel::Naive, OptLevel::Optimizing] {
        let mut s = Session::new(
            &src,
            Config {
                static_opt: opt,
                ..Config::default()
            },
        )
        .expect("front end accepts generated program");
        let got = s
            .call("static_f", &[p as i64 as u64, r as i64 as u64])
            .expect("runs");
        prop_assert_eq!(got as i64, expect as i64, "static {:?}", opt);
    }
    // Dynamic paths.
    for backend in [
        Backend::Vcode { unchecked: false },
        Backend::Icode {
            strategy: Alloc::LinearScan,
        },
        Backend::Icode {
            strategy: Alloc::GraphColor,
        },
    ] {
        let mut s = Session::new(
            &src,
            Config {
                backend: backend.clone(),
                ..Config::default()
            },
        )
        .expect("front end accepts generated program");
        let fp = s
            .call("dyn_compile", &[r as i64 as u64])
            .expect("dynamic compile");
        let got = s
            .call("dyn_run", &[fp, p as i64 as u64])
            .expect("dynamic run");
        prop_assert_eq!(got as i64, expect as i64, "dynamic {:?}", backend);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn five_paths_agree_on_random_expressions(
        e in expr_strategy(),
        p in -1000i32..1000,
        r in -1000i32..1000,
    ) {
        check_all_paths(&e, p, r)?;
    }
}

#[test]
fn fixed_regression_cases() {
    use E::*;
    // A deep multiply chain (register pressure), a $-heavy expression,
    // and a conditional of constants (dead code elimination).
    let cases = vec![
        Mul(
            Box::new(Mul(Box::new(Param), Box::new(Rtc))),
            Box::new(Mul(Box::new(Param), Box::new(Lit(7)))),
        ),
        Add(Box::new(Rtc), Box::new(Mul(Box::new(Rtc), Box::new(Rtc)))),
        Cond(Box::new(Lit(0)), Box::new(Param), Box::new(Rtc)),
        Cond(Box::new(Rtc), Box::new(Lit(1)), Box::new(Lit(2))),
    ];
    for e in cases {
        check_all_paths(&e, 13, -5).expect("paths agree");
        check_all_paths(&e, -7, 0).expect("paths agree");
    }
}
