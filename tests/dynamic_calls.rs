//! Dynamic call construction (`push_init`/`push`/`apply`): "the
//! construction of code to marshal and unmarshal arguments stored in a
//! byte vector" with argument counts determined at run time — "it is
//! impossible to write code that performs an equivalent function in
//! ANSI C" (§6.2).

use tickc::tickc_core::{Backend, Config, Session, Strategy};

fn backends() -> Vec<Backend> {
    vec![
        Backend::Vcode { unchecked: false },
        Backend::Icode {
            strategy: Strategy::LinearScan,
        },
        Backend::Icode {
            strategy: Strategy::GraphColor,
        },
    ]
}

#[test]
fn apply_builds_calls_with_runtime_determined_arity() {
    // One generator handles 2-, 3- and 5-argument targets, deciding the
    // arity from a run-time count.
    let src = r#"
        int buf[6];
        int sum2(int a, int b) { return a + b; }
        int sum3(int a, int b, int c) { return a + b + c; }
        int sum5(int a, int b, int c, int d, int e) {
            return a + b * 2 + c * 3 + d * 4 + e * 5;
        }
        long mk(long target, int n) {
            void cspec args = push_init();
            int i;
            for (i = 0; i < n; i++) push(args, `buf[$i]);
            int (*f)(void) = (int (*)(void))target;
            void cspec c = `{ return apply(f, args); };
            return (long)compile(c, int);
        }
        long addr2(void) { return (long)sum2; }
        long addr3(void) { return (long)sum3; }
        long addr5(void) { return (long)sum5; }
        void setbuf(int i, int v) { buf[i] = v; }
    "#;
    for b in backends() {
        let mut s = Session::new(
            src,
            Config {
                backend: b.clone(),
                ..Config::default()
            },
        )
        .expect("compiles");
        for i in 0..6u64 {
            s.call("setbuf", &[i, 10 * (i + 1)]).unwrap();
        }
        let a2 = s.call("addr2", &[]).unwrap();
        let a3 = s.call("addr3", &[]).unwrap();
        let a5 = s.call("addr5", &[]).unwrap();

        let f2 = s.call("mk", &[a2, 2]).unwrap();
        assert_eq!(s.call_addr(f2, &[]).unwrap(), 10 + 20, "{b:?}");
        let f3 = s.call("mk", &[a3, 3]).unwrap();
        assert_eq!(s.call_addr(f3, &[]).unwrap(), 10 + 20 + 30, "{b:?}");
        let f5 = s.call("mk", &[a5, 5]).unwrap();
        assert_eq!(
            s.call_addr(f5, &[]).unwrap(),
            10 + 20 * 2 + 30 * 3 + 40 * 4 + 50 * 5,
            "{b:?}"
        );
    }
}

#[test]
fn apply_with_direct_function_reference() {
    let src = r#"
        int target(int a, int b, int c) { return a * 100 + b * 10 + c; }
        long mk(void) {
            void cspec args = push_init();
            push(args, `1);
            push(args, `2);
            push(args, `3);
            void cspec c = `{ return apply(target, args); };
            return (long)compile(c, int);
        }
    "#;
    for b in backends() {
        let mut s = Session::new(
            src,
            Config {
                backend: b.clone(),
                ..Config::default()
            },
        )
        .expect("compiles");
        let fp = s.call("mk", &[]).unwrap();
        assert_eq!(s.call_addr(fp, &[]).unwrap(), 123, "{b:?}");
    }
}

#[test]
fn argument_cspecs_compose_arbitrary_code() {
    // Each argument is itself composed dynamic code, not just a load.
    let src = r#"
        int g(int a, int b) { return a - b; }
        long mk(int x) {
            int cspec big = `($x * 10 + 1);
            int cspec small = `($x - 1);
            void cspec args = push_init();
            push(args, `(big + small));
            push(args, small);
            void cspec c = `{ return apply(g, args); };
            return (long)compile(c, int);
        }
    "#;
    let mut s = Session::with_defaults(src).expect("compiles");
    let fp = s.call("mk", &[7]).unwrap();
    // big = 71, small = 6; g(71+6, 6) = 71
    assert_eq!(s.call_addr(fp, &[]).unwrap(), 71);
}

#[test]
fn umshl_style_unmarshal_and_call() {
    // The paper's umshl: unmarshal a vector and call a five-argument
    // function, with the format driving the construction.
    let src = r#"
        int vec[5];
        int usink(int a, int b, int c, int d, int e) {
            return a + b * 2 + c * 3 + d * 4 + e * 5;
        }
        void fill(void) {
            int i;
            for (i = 0; i < 5; i++) vec[i] = (i + 1) * 9;
        }
        long mk(char *fmt) {
            void cspec args = push_init();
            int i;
            for (i = 0; fmt[i] != 0; i++)
                if (fmt[i] == 'i') push(args, `vec[$i]);
            void cspec c = `{ return apply(usink, args); };
            return (long)compile(c, int);
        }
        char fmt[6] = "iiiii";
        long mk5(void) { return mk(fmt); }
    "#;
    let mut s = Session::with_defaults(src).expect("compiles");
    s.call("fill", &[]).unwrap();
    let fp = s.call("mk5", &[]).unwrap();
    let expect = 9 + 18 * 2 + 27 * 3 + 36 * 4 + 45 * 5;
    assert_eq!(s.call_addr(fp, &[]).unwrap() as i64, expect);
}

#[test]
fn misuse_is_rejected() {
    // apply outside dynamic code
    assert!(tickc::front::compile_unit(
        r#"int f(int (*g)(void)) { void cspec a = push_init(); return apply(g, a); }"#
    )
    .is_err());
    // push inside dynamic code
    assert!(tickc::front::compile_unit(
        r#"void f(void) { void cspec a = push_init(); void cspec c = `{ push(a, `1); }; }"#
    )
    .is_err());
    // pushing a void cspec
    assert!(tickc::front::compile_unit(
        r#"void f(void) { void cspec a = push_init(); push(a, `{ return; }); }"#
    )
    .is_err());
    // splicing an argument list as code is a dynamic-compile-time error
    let mut s = Session::with_defaults(
        r#"
        long f(void) {
            void cspec a = push_init();
            void cspec c = `{ a; return 0; };
            return (long)compile(c, int);
        }
        "#,
    )
    .expect("front end accepts");
    let err = s.call("f", &[]).unwrap_err().to_string();
    assert!(err.contains("apply"), "{err}");
}

#[test]
fn overfull_argument_list_errors() {
    let mut s = Session::with_defaults(
        r#"
        void f(int n) {
            void cspec a = push_init();
            int i;
            for (i = 0; i < n; i++) push(args_alias(a), `1);
        }
        void cspec args_alias(void cspec a) { return a; }
        "#,
    )
    .expect("front end accepts");
    s.call("f", &[6]).expect("six arguments fit");
    let err = s.call("f", &[7]).unwrap_err().to_string();
    assert!(err.contains("full"), "{err}");
}
