//! Dynamic labels and jumps (§3: "`C has many other features, including
//! facilities to … dynamically create labels and jumps") — control flow
//! composed across cspec boundaries, which plain C `goto` cannot do.

use tickc::tickc_core::{Backend, Config, Session, Strategy};

fn backends() -> Vec<Backend> {
    vec![
        Backend::Vcode { unchecked: false },
        Backend::Icode {
            strategy: Strategy::LinearScan,
        },
        Backend::Icode {
            strategy: Strategy::GraphColor,
        },
    ]
}

#[test]
fn backward_jump_builds_a_loop_across_cspecs() {
    // The loop head lives in one cspec, the back edge in another.
    for b in backends() {
        let mut s = Session::new(
            r#"
            int f(int n) {
                void cspec top = label();
                int vspec i = local(int);
                int vspec acc = local(int);
                void cspec body = `{ acc = acc + i; i = i - 1; };
                void cspec back = `{ if (i > 0) jump(top); };
                void cspec all = `{
                    i = $n; acc = 0;
                    top;
                    body;
                    back;
                    return acc;
                };
                int (*g)(void) = compile(all, int);
                return (*g)();
            }
            "#,
            Config {
                backend: b.clone(),
                ..Config::default()
            },
        )
        .expect("compiles");
        assert_eq!(s.call("f", &[10]).unwrap(), 55, "{b:?}");
    }
}

#[test]
fn forward_jump_skips_code() {
    for b in backends() {
        let mut s = Session::new(
            r#"
            int f(int x) {
                void cspec out = label();
                int vspec r = local(int);
                void cspec all = `{
                    r = 1;
                    if ($x) jump(out);
                    r = 2;
                    out;
                    return r;
                };
                int (*g)(void) = compile(all, int);
                return (*g)();
            }
            "#,
            Config {
                backend: b.clone(),
                ..Config::default()
            },
        )
        .expect("compiles");
        assert_eq!(s.call("f", &[1]).unwrap(), 1, "{b:?}");
        assert_eq!(s.call("f", &[0]).unwrap(), 2, "{b:?}");
    }
}

#[test]
fn state_machine_threaded_through_labels() {
    // A little dispatch structure: states jump to each other directly.
    let mut s = Session::with_defaults(
        r#"
        int f(int n) {
            void cspec s0 = label();
            void cspec s1 = label();
            void cspec done = label();
            int vspec x = local(int);
            int vspec steps = local(int);
            void cspec all = `{
                x = $n; steps = 0;
                s0;
                steps = steps + 1;
                if (x <= 1) jump(done);
                if (x % 2) { x = 3 * x + 1; jump(s1); }
                x = x / 2;
                jump(s0);
                s1;
                steps = steps + 1;
                jump(s0);
                done;
                return steps;
            };
            int (*g)(void) = compile(all, int);
            return (*g)();
        }
        "#,
    )
    .expect("compiles");
    // Collatz from 6: 6→3→10→5→16→8→4→2→1; count of s0 visits plus s1
    // visits along the way — just check determinism and termination.
    let a = s.call("f", &[6]).unwrap();
    let b = s.call("f", &[6]).unwrap();
    assert_eq!(a, b);
    assert!(a > 5);
}

#[test]
fn jump_to_unspliced_label_is_an_error() {
    let mut s = Session::with_defaults(
        r#"
        int f(void) {
            void cspec l = label();
            void cspec all = `{ jump(l); return 0; };
            int (*g)(void) = compile(all, int);
            return (*g)();
        }
        "#,
    )
    .expect("front end accepts");
    let err = s.call("f", &[]).unwrap_err().to_string();
    assert!(err.contains("never spliced"), "{err}");
}

#[test]
fn label_spliced_twice_is_an_error() {
    let mut s = Session::with_defaults(
        r#"
        int f(void) {
            void cspec l = label();
            void cspec all = `{ l; l; return 0; };
            int (*g)(void) = compile(all, int);
            return (*g)();
        }
        "#,
    )
    .expect("front end accepts");
    let err = s.call("f", &[]).unwrap_err().to_string();
    assert!(err.contains("twice"), "{err}");
}

#[test]
fn sema_rejects_misuse() {
    // jump outside dynamic code
    assert!(
        tickc::front::compile_unit("void f(void) { void cspec l = label(); jump(l); }").is_err()
    );
    // label() inside dynamic code
    assert!(tickc::front::compile_unit(
        "void f(void) { void cspec c = `{ void cspec l = label(); }; }"
    )
    .is_err());
    // jump to a non-label value
    assert!(tickc::front::compile_unit("void f(int x) { void cspec c = `{ jump(x); }; }").is_err());
}
