//! Failure injection: machine faults and dynamic-compilation errors must
//! surface as typed errors with useful diagnostics — never panics, never
//! silent corruption.

use tickc::tickc_core::{Config, Session};
use tickc::vm::VmError;

#[test]
fn null_pointer_dereference_faults() {
    let mut s =
        Session::with_defaults("int f(void) { int *p = (int*)0; return *p; }").expect("compiles");
    let err = s.call("f", &[]).unwrap_err().to_string();
    assert!(err.contains("out of bounds"), "{err}");
}

#[test]
fn division_by_zero_faults() {
    let mut s = Session::with_defaults("int f(int a, int b) { return a / b; }").expect("compiles");
    assert_eq!(s.call("f", &[10, 2]).unwrap(), 5);
    let err = s.call("f", &[10, 0]).unwrap_err().to_string();
    assert!(err.contains("division by zero"), "{err}");
}

#[test]
fn division_by_zero_in_dynamic_code_faults() {
    let mut s = Session::with_defaults(
        r#"
        long mk(void) {
            int vspec a = param(int, 0);
            int vspec b = param(int, 1);
            int cspec c = `(a / b);
            return (long)compile(c, int);
        }
        int run2(long fp, int a, int b) {
            int (*g)(void) = (int (*)(void))fp;
            return (*g)(a, b);
        }
        "#,
    )
    .expect("compiles");
    let fp = s.call("mk", &[]).expect("compiles dynamically");
    assert_eq!(s.call("run2", &[fp, 12, 3]).unwrap(), 4);
    let err = s.call("run2", &[fp, 12, 0]).unwrap_err().to_string();
    assert!(err.contains("division by zero"), "{err}");
}

#[test]
fn runaway_dynamic_code_hits_the_fuel_limit() {
    let mut s = Session::with_defaults(
        r#"
        long mk(void) {
            void cspec c = `{ int i; i = 0; while (1) i = i + 1; };
            return (long)compile(c, void);
        }
        "#,
    )
    .expect("compiles");
    let fp = s.call("mk", &[]).expect("compiles dynamically");
    s.vm.set_fuel(100_000);
    let err = s.call_addr(fp, &[]).unwrap_err();
    assert!(
        matches!(err, tickc::tickc_core::Error::Vm(VmError::OutOfFuel)),
        "{err}"
    );
}

#[test]
fn huge_static_loop_stays_a_loop() {
    // 3M iterations of a statically-bounded loop: the trip-count
    // pre-simulation refuses to unroll, so it compiles to a real loop
    // and still runs correctly.
    let mut s = Session::with_defaults(
        r#"
        int big = 3000000;
        long mk(void) {
            void cspec c = `{
                int k;
                long s;
                s = 0;
                for (k = 0; k < $big; k++) s = s + 2;
                return s;
            };
            return (long)compile(c, long);
        }
        int run_it(long fp) {
            long (*g)(void) = (long (*)(void))fp;
            return (int)((*g)() / 1000);
        }
        "#,
    )
    .expect("compiles");
    let fp = s.call("mk", &[]).expect("bails to a loop");
    assert_eq!(
        s.dyn_stats().unrolled_iters,
        0,
        "must not unroll 3M iterations"
    );
    assert_eq!(s.call("run_it", &[fp]).unwrap(), 6000);
}

#[test]
fn abort_builtin_aborts() {
    let mut s = Session::with_defaults("void f(int x) { if (x) abort(); }").expect("compiles");
    s.call("f", &[0]).expect("no abort");
    let err = s.call("f", &[1]).unwrap_err().to_string();
    assert!(err.contains("abort"), "{err}");
}

#[test]
fn compile_of_garbage_closure_pointer_is_detected() {
    // Call compile() on a pointer that is not a closure.
    let mut s = Session::with_defaults(
        r#"
        int x = 77;
        long f(void) {
            int cspec c = (int cspec)(long)&x;
            return (long)compile(c, int);
        }
        "#,
    )
    .expect("compiles");
    let err = s.call("f", &[]).unwrap_err().to_string();
    assert!(
        err.contains("bad cgf id") || err.contains("out of bounds"),
        "{err}"
    );
}

#[test]
fn stack_smashing_dynamic_recursion_is_bounded() {
    // Composition depth guard: a closure graph deeper than the limit.
    let mut s = Session::with_defaults(
        r#"
        long mk(int n) {
            int cspec c = `1;
            int i;
            for (i = 0; i < n; i++) c = `(c + 1);
            return (long)compile(c, int);
        }
        "#,
    )
    .expect("compiles");
    // Within the limit: fine.
    let fp = s.call("mk", &[200]).expect("compiles");
    assert_eq!(s.call_addr(fp, &[]).unwrap(), 201);
    // Past the limit: clean error, not a host stack overflow.
    let err = s.call("mk", &[600]).unwrap_err().to_string();
    assert!(err.contains("too deep"), "{err}");
}

#[test]
fn memory_exhaustion_is_an_error_not_a_panic() {
    let mut s = Session::new(
        "long f(long n) { return (long)malloc(n); }",
        Config {
            mem_size: 1 << 20,
            ..Config::default()
        },
    )
    .expect("compiles");
    assert!(s.call("f", &[1024]).is_ok());
    let err = s.call("f", &[64 << 20]).unwrap_err().to_string();
    assert!(err.contains("out of bounds"), "{err}");
}
