//! Failure injection: machine faults and dynamic-compilation errors must
//! surface as typed errors with useful diagnostics — never panics, never
//! silent corruption.

use tickc::tickc_core::{Config, Session};
use tickc::vm::VmError;

#[test]
fn null_pointer_dereference_faults() {
    let mut s =
        Session::with_defaults("int f(void) { int *p = (int*)0; return *p; }").expect("compiles");
    let err = s.call("f", &[]).unwrap_err().to_string();
    assert!(err.contains("out of bounds"), "{err}");
}

#[test]
fn division_by_zero_faults() {
    let mut s = Session::with_defaults("int f(int a, int b) { return a / b; }").expect("compiles");
    assert_eq!(s.call("f", &[10, 2]).unwrap(), 5);
    let err = s.call("f", &[10, 0]).unwrap_err().to_string();
    assert!(err.contains("division by zero"), "{err}");
}

#[test]
fn division_by_zero_in_dynamic_code_faults() {
    let mut s = Session::with_defaults(
        r#"
        long mk(void) {
            int vspec a = param(int, 0);
            int vspec b = param(int, 1);
            int cspec c = `(a / b);
            return (long)compile(c, int);
        }
        int run2(long fp, int a, int b) {
            int (*g)(void) = (int (*)(void))fp;
            return (*g)(a, b);
        }
        "#,
    )
    .expect("compiles");
    let fp = s.call("mk", &[]).expect("compiles dynamically");
    assert_eq!(s.call("run2", &[fp, 12, 3]).unwrap(), 4);
    let err = s.call("run2", &[fp, 12, 0]).unwrap_err().to_string();
    assert!(err.contains("division by zero"), "{err}");
}

#[test]
fn runaway_dynamic_code_hits_the_fuel_limit() {
    let mut s = Session::with_defaults(
        r#"
        long mk(void) {
            void cspec c = `{ int i; i = 0; while (1) i = i + 1; };
            return (long)compile(c, void);
        }
        "#,
    )
    .expect("compiles");
    let fp = s.call("mk", &[]).expect("compiles dynamically");
    s.vm.set_fuel(100_000);
    let err = s.call_addr(fp, &[]).unwrap_err();
    assert!(
        matches!(err, tickc::tickc_core::Error::Vm(VmError::OutOfFuel)),
        "{err}"
    );
}

#[test]
fn huge_static_loop_stays_a_loop() {
    // 3M iterations of a statically-bounded loop: the trip-count
    // pre-simulation refuses to unroll, so it compiles to a real loop
    // and still runs correctly.
    let mut s = Session::with_defaults(
        r#"
        int big = 3000000;
        long mk(void) {
            void cspec c = `{
                int k;
                long s;
                s = 0;
                for (k = 0; k < $big; k++) s = s + 2;
                return s;
            };
            return (long)compile(c, long);
        }
        int run_it(long fp) {
            long (*g)(void) = (long (*)(void))fp;
            return (int)((*g)() / 1000);
        }
        "#,
    )
    .expect("compiles");
    let fp = s.call("mk", &[]).expect("bails to a loop");
    assert_eq!(
        s.dyn_stats().unrolled_iters,
        0,
        "must not unroll 3M iterations"
    );
    assert_eq!(s.call("run_it", &[fp]).unwrap(), 6000);
}

#[test]
fn abort_builtin_aborts() {
    let mut s = Session::with_defaults("void f(int x) { if (x) abort(); }").expect("compiles");
    s.call("f", &[0]).expect("no abort");
    let err = s.call("f", &[1]).unwrap_err().to_string();
    assert!(err.contains("abort"), "{err}");
}

#[test]
fn compile_of_garbage_closure_pointer_is_detected() {
    // Call compile() on a pointer that is not a closure.
    let mut s = Session::with_defaults(
        r#"
        int x = 77;
        long f(void) {
            int cspec c = (int cspec)(long)&x;
            return (long)compile(c, int);
        }
        "#,
    )
    .expect("compiles");
    let err = s.call("f", &[]).unwrap_err().to_string();
    assert!(
        err.contains("bad cgf id") || err.contains("out of bounds"),
        "{err}"
    );
}

#[test]
fn stack_smashing_dynamic_recursion_is_bounded() {
    // Composition depth guard: a closure graph deeper than the limit.
    let mut s = Session::with_defaults(
        r#"
        long mk(int n) {
            int cspec c = `1;
            int i;
            for (i = 0; i < n; i++) c = `(c + 1);
            return (long)compile(c, int);
        }
        "#,
    )
    .expect("compiles");
    // Within the limit: fine.
    let fp = s.call("mk", &[200]).expect("compiles");
    assert_eq!(s.call_addr(fp, &[]).unwrap(), 201);
    // Past the limit: clean error, not a host stack overflow.
    let err = s.call("mk", &[600]).unwrap_err().to_string();
    assert!(err.contains("too deep"), "{err}");
}

/// A compile site parameterized on `$n` for the lifecycle fault tests.
const MAKE: &str = r#"
long make(int n) {
    int cspec c = `($n * 3 + 4);
    int (*f)(void) = compile(c, int);
    return (long)f;
}
"#;

#[test]
fn pinned_code_is_never_evicted() {
    // Budget fits roughly one generated function, so every further
    // distinct compile wants to evict the LRU entry — which is pinned.
    let mut s = Session::new(
        MAKE,
        Config {
            code_budget: Some(256),
            ..Config::default()
        },
    )
    .expect("compiles");
    let keep = s.call("make", &[1]).unwrap();
    assert!(s.pin_code(keep), "freshly cached entry must be pinnable");
    for n in 2..40u64 {
        s.call("make", &[n]).unwrap();
    }
    // Pressure evicted others, never the pinned entry.
    assert!(s.metrics().cache.evictions > 0, "no eviction pressure");
    assert_eq!(s.call_addr(keep, &[]).unwrap(), 7, "pinned code died");
    // Releasing the pin puts it back on the menu: it is the
    // least-recently-used entry, so the very next insert reclaims it.
    // (Probe before a further compile reuses the freed range — after
    // that, the address may alias fresh code; that is exactly why
    // handed-out pointers are pinned.)
    assert!(s.unpin_code(keep));
    let evictions = s.metrics().cache.evictions;
    s.call("make", &[1000]).unwrap();
    assert_eq!(s.metrics().cache.evictions, evictions + 1);
    let err = s.call_addr(keep, &[]).unwrap_err();
    assert!(
        matches!(err, tickc::tickc_core::Error::Vm(VmError::StaleCode(_))),
        "{err}"
    );
}

#[test]
fn budget_smaller_than_one_function_still_compiles() {
    // A budget no function fits into cannot cache anything — but it
    // must never refuse the compile itself.
    let mut s = Session::new(
        MAKE,
        Config {
            code_budget: Some(8),
            ..Config::default()
        },
    )
    .expect("compiles");
    let a = s.call("make", &[5]).unwrap();
    let b = s.call("make", &[5]).unwrap();
    assert_eq!(s.call_addr(a, &[]).unwrap(), 19);
    assert_eq!(s.call_addr(b, &[]).unwrap(), 19);
    let m = s.metrics().cache;
    assert_eq!(m.hits, 0, "nothing fits, nothing can hit");
    assert!(m.uncacheable >= 2, "oversized compiles must be counted");
    assert_eq!(m.bytes_live, 0);
}

proptest::proptest! {
    #![proptest_config(proptest::test_runner::ProptestConfig::with_cases(16))]

    /// Fingerprints are injective over `$`-constant values: two
    /// specializations on different run-time constants can never alias
    /// to one cached function.
    #[test]
    fn distinct_dollar_values_never_share_code(a in 0u64..100_000, b in 0u64..100_000) {
        proptest::prop_assume!(a != b);
        let mut s = Session::new(MAKE, Config::default()).expect("compiles");
        let fa = s.call("make", &[a]).unwrap();
        let fb = s.call("make", &[b]).unwrap();
        proptest::prop_assert_ne!(fa, fb, "distinct constants collided in cache");
        proptest::prop_assert_eq!(s.call_addr(fa, &[]).unwrap(), a * 3 + 4);
        proptest::prop_assert_eq!(s.call_addr(fb, &[]).unwrap(), b * 3 + 4);
    }
}

#[test]
fn memory_exhaustion_is_an_error_not_a_panic() {
    let mut s = Session::new(
        "long f(long n) { return (long)malloc(n); }",
        Config {
            mem_size: 1 << 20,
            ..Config::default()
        },
    )
    .expect("compiles");
    assert!(s.call("f", &[1024]).is_ok());
    let err = s.call("f", &[64 << 20]).unwrap_err().to_string();
    assert!(err.contains("out of bounds"), "{err}");
}
