//! Engine-differential fuzzing: randomized `C programs executed through
//! the decode-per-step reference interpreter, the predecoded engine
//! (with and without superinstruction fusion), the direct-threaded
//! fuel-batched engine, and the adaptive tiering engine, asserting
//! bit-identical observable behavior — result value, modeled `cycles`, retired
//! `insns`, exit status, and error, including `OutOfFuel` raised at the
//! same instruction under swept fuel budgets (before, during, and after
//! adaptive tier promotions). Also pins down the
//! stale-code interactions: freed and cache-evicted functions must
//! fault with `StaleCode` even when the translation cache is warm.

use proptest::prelude::*;
use tickc::tickc_core::{Backend, Config, Error, Session, Strategy as Alloc};
use tickc::vm::{ExecEngine, VmError};

const ENGINES: [ExecEngine; 8] = [
    ExecEngine::DecodePerStep,
    ExecEngine::Predecoded { fuse: false },
    ExecEngine::Predecoded { fuse: true },
    ExecEngine::Threaded,
    // Hair-trigger thresholds: functions climb to the threaded tier
    // within a single observation, so promotions land inside the sweep.
    ExecEngine::Adaptive {
        fuse_after: 1,
        thread_after: 2,
        background: false,
    },
    // Shipping defaults: most functions stay on the lower tiers.
    ExecEngine::Adaptive {
        fuse_after: 2,
        thread_after: 8,
        background: false,
    },
    // The same two threshold configs with translation on the background
    // worker: whether a given run dispatches through the swapped-in
    // buffer or is still single-stepping depends on worker timing, but
    // the observables (results, modeled cycles/insns, faults) must be
    // bit-identical either way — that timing-independence IS the async
    // pipeline's contract.
    ExecEngine::Adaptive {
        fuse_after: 1,
        thread_after: 2,
        background: true,
    },
    ExecEngine::Adaptive {
        fuse_after: 2,
        thread_after: 8,
        background: true,
    },
];

fn engine_label(e: ExecEngine) -> &'static str {
    match e {
        ExecEngine::DecodePerStep => "decode-per-step",
        ExecEngine::Predecoded { fuse: false } => "predecoded",
        ExecEngine::Predecoded { fuse: true } => "predecoded+fused",
        ExecEngine::Threaded => "threaded",
        ExecEngine::Adaptive {
            fuse_after: 1,
            background: false,
            ..
        } => "adaptive(hair-trigger)",
        ExecEngine::Adaptive {
            fuse_after: 1,
            background: true,
            ..
        } => "adaptive(hair-trigger,bg)",
        ExecEngine::Adaptive {
            background: true, ..
        } => "adaptive(bg)",
        ExecEngine::Adaptive { .. } => "adaptive",
    }
}

// ---------------------------------------------------------------------------
// Random program generation: assignments, bounded loops, branches, and
// a division that can trap, over four locals + a parameter + a
// run-time constant.
// ---------------------------------------------------------------------------

const NVARS: usize = 4;

#[derive(Clone, Debug)]
enum Val {
    Var(usize),
    Param,
    Rtc,
    Lit(i32),
}

#[derive(Clone, Debug)]
enum St {
    /// `vK = a op b;` — op index into OPS (last entry divides, which
    /// can fault with DivideByZero).
    Assign(usize, usize, Val, Val),
    /// `if (a < b) { .. } else { .. }`
    If(Val, Val, Vec<St>, Vec<St>),
    /// `for (k = 0; k < n; k++) { body }`
    Loop(u8, Vec<St>),
}

const OPS: [&str; 6] = ["+", "-", "*", "^", "&", "/"];

fn val_strategy() -> impl Strategy<Value = Val> {
    prop_oneof![
        (0..NVARS).prop_map(Val::Var),
        Just(Val::Param),
        Just(Val::Rtc),
        (-20i32..20).prop_map(Val::Lit),
    ]
}

fn st_strategy() -> impl Strategy<Value = St> {
    let assign = (0..NVARS, 0..OPS.len(), val_strategy(), val_strategy())
        .prop_map(|(d, op, a, b)| St::Assign(d, op, a, b));
    assign.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            3 => (0..NVARS, 0..OPS.len(), val_strategy(), val_strategy())
                .prop_map(|(d, op, a, b)| St::Assign(d, op, a, b)),
            1 => (
                val_strategy(),
                val_strategy(),
                prop::collection::vec(inner.clone(), 0..3),
                prop::collection::vec(inner.clone(), 0..3)
            )
                .prop_map(|(a, b, t, e)| St::If(a, b, t, e)),
            1 => (1u8..6, prop::collection::vec(inner, 1..3))
                .prop_map(|(n, body)| St::Loop(n, body)),
        ]
    })
}

fn val_c(v: &Val, dollar: bool) -> String {
    match v {
        Val::Var(i) => format!("v{i}"),
        Val::Param => "p".into(),
        Val::Rtc => {
            if dollar {
                "$r".into()
            } else {
                "r".into()
            }
        }
        Val::Lit(c) => format!("({c})"),
    }
}

fn st_c(s: &St, dollar: bool, depth: usize, counter: &mut usize) -> String {
    let pad = "    ".repeat(depth + 1);
    match s {
        St::Assign(d, op, a, b) => format!(
            "{pad}v{d} = {} {} {};\n",
            val_c(a, dollar),
            OPS[*op],
            val_c(b, dollar)
        ),
        St::If(a, b, t, e) => {
            let mut out = format!("{pad}if ({} < {}) {{\n", val_c(a, dollar), val_c(b, dollar));
            for s in t {
                out.push_str(&st_c(s, dollar, depth + 1, counter));
            }
            out.push_str(&format!("{pad}}} else {{\n"));
            for s in e {
                out.push_str(&st_c(s, dollar, depth + 1, counter));
            }
            out.push_str(&format!("{pad}}}\n"));
            out
        }
        St::Loop(n, body) => {
            let k = *counter;
            *counter += 1;
            let mut out = format!("{pad}for (k{k} = 0; k{k} < {n}; k{k}++) {{\n");
            for s in body {
                out.push_str(&st_c(s, dollar, depth + 1, counter));
            }
            out.push_str(&format!("{pad}}}\n"));
            out
        }
    }
}

fn count_loops(sts: &[St]) -> usize {
    sts.iter()
        .map(|s| match s {
            St::Assign(..) => 0,
            St::If(_, _, t, e) => count_loops(t) + count_loops(e),
            St::Loop(_, b) => 1 + count_loops(b),
        })
        .sum()
}

fn program_for(sts: &[St]) -> String {
    let nloops = count_loops(sts);
    let decl_ks = |prefix: &str| -> String {
        (0..nloops)
            .map(|k| format!("{prefix}int k{k};\n"))
            .collect()
    };
    let decl_vs =
        |prefix: &str| -> String { (0..NVARS).map(|i| format!("{prefix}int v{i};\n")).collect() };
    let init_vs: String = (0..NVARS)
        .map(|i| format!("    v{i} = {};\n", i as i32 + 1))
        .collect();
    let mut c0 = 0usize;
    let static_body: String = sts.iter().map(|s| st_c(s, false, 0, &mut c0)).collect();
    let mut c1 = 0usize;
    let dyn_body: String = sts.iter().map(|s| st_c(s, true, 0, &mut c1)).collect();
    let sum: String = (0..NVARS)
        .map(|i| format!(" + v{i}"))
        .collect::<String>()
        .trim_start_matches(" + ")
        .to_string();
    format!(
        r#"
int static_f(int p, int r) {{
{}{}
{init_vs}{static_body}    return {sum};
}}
long dyn_compile(int r) {{
    int vspec p = param(int, 0);
    void cspec c = `{{
{}{}
{init_vs}{dyn_body}        return {sum};
    }};
    return (long)compile(c, int);
}}
int dyn_run(long fp, int p) {{
    int (*g)(void) = (int (*)(void))fp;
    return (*g)(p);
}}
"#,
        decl_vs("    "),
        decl_ks("    "),
        decl_vs("        "),
        decl_ks("        "),
    )
}

// ---------------------------------------------------------------------------
// The differential observation: everything an engine can affect.
// ---------------------------------------------------------------------------

fn vm_err(e: Error) -> VmError {
    match e {
        Error::Vm(v) => v,
        Error::Front(f) => panic!("front-end error during execution: {f}"),
    }
}

/// Full observable trace of one session run: per-call outcome plus
/// final counters. Equality of this struct across engines IS the
/// equivalence contract (an error at a different instruction shows up
/// as a different cycle/insn count).
#[derive(Debug, PartialEq)]
struct Obs {
    static_result: Result<u64, VmError>,
    compile_result: Result<u64, VmError>,
    dyn_result: Option<Result<u64, VmError>>,
    cycles: u64,
    insns: u64,
    hcalls: u64,
}

fn observe(src: &str, backend: &Backend, engine: ExecEngine, fuel: Option<u64>, p: i64) -> Obs {
    let mut s = Session::new(
        src,
        Config {
            backend: backend.clone(),
            ..Config::default()
        },
    )
    .unwrap_or_else(|e| panic!("generated program rejected: {e}\n{src}"));
    s.vm.set_engine(engine);
    if let Some(f) = fuel {
        s.vm.set_fuel(f);
    }
    let static_result = s.call("static_f", &[p as u64, 13]).map_err(vm_err);
    let compile_result = s.call("dyn_compile", &[13]).map_err(vm_err);
    let dyn_result = compile_result
        .as_ref()
        .ok()
        .copied()
        .map(|fp| s.call("dyn_run", &[fp, p as u64]).map_err(vm_err));
    Obs {
        static_result,
        compile_result,
        dyn_result,
        cycles: s.cycles(),
        insns: s.insns(),
        hcalls: s.hcalls(),
    }
}

fn check_differential(sts: &[St], p: i64) -> Result<(), TestCaseError> {
    let src = program_for(sts);
    for backend in [
        Backend::Vcode { unchecked: false },
        Backend::Icode {
            strategy: Alloc::LinearScan,
        },
    ] {
        // Unlimited fuel: results, counters, and any traps (e.g.
        // DivideByZero) must agree.
        let reference = observe(&src, &backend, ENGINES[0], None, p);
        for &e in &ENGINES[1..] {
            let got = observe(&src, &backend, e, None, p);
            prop_assert_eq!(
                &got,
                &reference,
                "{} diverges ({:?})\n{}",
                engine_label(e),
                backend,
                src
            );
        }
        // Swept fuel budgets: OutOfFuel must fire at the same
        // instruction (identical cycles/insns at the stop point).
        let total = reference.cycles;
        for fuel in [total / 7, total / 3, total / 2, total.saturating_sub(1)] {
            let reference = observe(&src, &backend, ENGINES[0], Some(fuel), p);
            for &e in &ENGINES[1..] {
                let got = observe(&src, &backend, e, Some(fuel), p);
                prop_assert_eq!(
                    &got,
                    &reference,
                    "{} diverges at fuel {} ({:?})\n{}",
                    engine_label(e),
                    fuel,
                    backend,
                    src
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn engines_agree_on_random_programs(
        sts in prop::collection::vec(st_strategy(), 1..6),
        p in -100i64..100,
    ) {
        check_differential(&sts, p)?;
    }
}

#[test]
fn fixed_differential_regressions() {
    use St::*;
    use Val::*;
    let cases: Vec<Vec<St>> = vec![
        // Tight loop: the fused compare+branch back edge.
        vec![Loop(5, vec![Assign(0, 0, Var(0), Rtc)])],
        // Division by a loop-carried value that reaches zero: the trap
        // must fire at the same instruction on every engine.
        vec![
            Assign(1, 1, Var(1), Var(1)), // v1 = 0
            Assign(0, 5, Param, Var(1)),  // v0 = p / 0
        ],
        // Nested loops with a branch in the middle of fusable pairs.
        vec![Loop(
            3,
            vec![If(
                Var(0),
                Rtc,
                vec![Assign(0, 0, Var(0), Lit(3))],
                vec![Assign(2, 2, Var(2), Lit(2))],
            )],
        )],
    ];
    for sts in cases {
        check_differential(&sts, 7).expect("agrees");
        check_differential(&sts, -41).expect("agrees");
    }
}

/// Dense fuel sweep aimed at the batched engine's edges: budgets in
/// windows around phase boundaries — the end of the static call, the
/// `compile` host call (where the threaded engine must reconcile its
/// counters across the host boundary), and the final cycle — plus the
/// program's entry blocks. Within each window every single budget is
/// tried, so exhaustion lands on block boundaries, mid-block, and
/// host-call reconciliation points alike.
#[test]
fn fuel_sweep_covers_block_boundaries_and_hcall_reconciliation() {
    let sts = vec![
        St::Loop(3, vec![St::Assign(0, 0, Val::Var(0), Val::Rtc)]),
        St::Assign(1, 5, Val::Param, Val::Var(0)),
    ];
    let src = program_for(&sts);
    let backend = Backend::Vcode { unchecked: false };
    // Phase-boundary cycle counts from an unlimited reference run.
    let mut s = Session::new(
        &src,
        Config {
            backend: backend.clone(),
            ..Config::default()
        },
    )
    .expect("compiles");
    s.vm.set_engine(ENGINES[0]);
    s.call("static_f", &[7, 13]).expect("static");
    let after_static = s.cycles();
    let fp = s.call("dyn_compile", &[13]).expect("compile");
    let after_compile = s.cycles();
    let _ = s.call("dyn_run", &[fp, 7]);
    let total = s.cycles();
    assert!(s.hcalls() > 0, "compile path must cross the host boundary");

    let mut budgets: Vec<u64> = (0..40).collect();
    for edge in [after_static, after_compile, total] {
        budgets.extend(edge.saturating_sub(25)..edge + 25);
    }
    budgets.retain(|&f| f < total);
    budgets.sort_unstable();
    budgets.dedup();
    for fuel in budgets {
        let reference = observe(&src, &backend, ENGINES[0], Some(fuel), 7);
        for &e in &ENGINES[1..] {
            let got = observe(&src, &backend, e, Some(fuel), 7);
            assert_eq!(
                got,
                reference,
                "{} diverges at fuel {fuel}",
                engine_label(e)
            );
        }
    }
}

/// Fuel budgets that exhaust INSIDE threaded superinstruction groups.
/// The kernel's loop bodies compile into run+branch and run+jump
/// groups (multi-instruction scalar runs ending in control flow), so a
/// per-cycle sweep across the dynamic function's whole execution lands
/// budgets mid-run inside fused handlers — exercising the batched
/// charge / un-charge reconciliation from within a single dispatch.
/// Every engine must stop at the identical instruction.
#[test]
fn fuel_sweep_straddles_superinstruction_groups_mid_group() {
    let sts = vec![
        St::Loop(
            4,
            vec![
                St::Assign(0, 0, Val::Var(0), Val::Param),  // v0 = v0 + p
                St::Assign(1, 1, Val::Var(1), Val::Lit(3)), // v1 = v1 - 3
            ],
        ),
        St::Assign(2, 2, Val::Var(2), Val::Var(1)),
    ];
    let src = program_for(&sts);
    for backend in [
        Backend::Vcode { unchecked: false },
        Backend::Icode {
            strategy: Alloc::LinearScan,
        },
    ] {
        // Confirm the threaded engine actually compiles and dispatches
        // superinstructions on this kernel — otherwise the sweep below
        // would vacuously pass without touching the fused handlers.
        let mut s = Session::new(
            &src,
            Config {
                backend: backend.clone(),
                ..Config::default()
            },
        )
        .expect("compiles");
        s.vm.set_engine(ExecEngine::Threaded);
        s.call("static_f", &[7, 13]).expect("static");
        let after_compile;
        {
            let fp = s.call("dyn_compile", &[13]).expect("compile");
            after_compile = s.cycles();
            s.call("dyn_run", &[fp, 7]).expect("dyn run");
        }
        let total = s.cycles();
        let exec = s.metrics().exec;
        assert!(
            exec.superinstructions > 0,
            "kernel must compile superinstructions ({backend:?})"
        );
        assert!(
            exec.fused_dispatches > 0,
            "kernel must dispatch through fused handlers ({backend:?})"
        );
        assert!(
            !s.fused_shape_histogram().is_empty(),
            "shape histogram populated ({backend:?})"
        );

        // Per-cycle sweep across the dynamic run (where the loop — and
        // so every superinstruction group — lives), plus the entry
        // window.
        let mut budgets: Vec<u64> = (0..24).collect();
        budgets.extend(after_compile.saturating_sub(8)..total);
        budgets.retain(|&f| f < total);
        budgets.dedup();
        for fuel in budgets {
            let reference = observe(&src, &backend, ENGINES[0], Some(fuel), 7);
            for &e in &ENGINES[1..] {
                let got = observe(&src, &backend, e, Some(fuel), 7);
                assert_eq!(
                    got,
                    reference,
                    "{} diverges at fuel {fuel} ({:?})",
                    engine_label(e),
                    backend
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Promotion-boundary differentials: the adaptive engine re-tiers a
// function between (and never during) runs, so a sequence of calls that
// straddles the fuse/thread thresholds must stay bit-identical to the
// reference run by run — including when fuel runs out mid-way through
// the very run whose entry triggered a promotion, and when that run
// faults.
// ---------------------------------------------------------------------------

/// One entry of the per-run trace: the call outcome plus the cumulative
/// counters after it. `OutOfFuel` and traps at a different instruction
/// surface as different cycle/insn counts.
#[derive(Debug, PartialEq)]
struct RunObs {
    result: Result<u64, VmError>,
    cycles: u64,
    insns: u64,
}

/// Compiles `src` once, then calls `dyn_run` with each parameter in
/// `ps`, recording every outcome. `fuel` is the session-wide budget, so
/// exhaustion can land inside any run of the sequence. Returns the
/// per-run trace plus the session's final promotion count (zero for
/// non-adaptive engines).
fn observe_run_sequence(
    src: &str,
    engine: ExecEngine,
    fuel: Option<u64>,
    ps: &[i64],
) -> (Vec<RunObs>, u64) {
    let mut s = Session::new(src, Config::default()).expect("compiles");
    s.vm.set_engine(engine);
    if let Some(f) = fuel {
        s.vm.set_fuel(f);
    }
    let mut trace = Vec::new();
    let compile = s.call("dyn_compile", &[13]).map_err(vm_err);
    trace.push(RunObs {
        result: compile.clone(),
        cycles: s.cycles(),
        insns: s.insns(),
    });
    if let Ok(fp) = compile {
        for &p in ps {
            let result = s.call("dyn_run", &[fp, p as u64]).map_err(vm_err);
            trace.push(RunObs {
                result,
                cycles: s.cycles(),
                insns: s.insns(),
            });
        }
    }
    (trace, s.metrics().adaptive.promotions)
}

/// Fuel budgets straddling every run boundary of the unlimited
/// reference trace, so exhaustion lands before, during, and after each
/// adaptive promotion.
fn boundary_budgets(reference: &[RunObs]) -> Vec<u64> {
    let mut budgets: Vec<u64> = (0..16).collect();
    for obs in reference {
        budgets.extend(obs.cycles.saturating_sub(8)..obs.cycles + 8);
    }
    let total = reference.last().expect("non-empty trace").cycles;
    budgets.retain(|&f| f < total);
    budgets.sort_unstable();
    budgets.dedup();
    budgets
}

#[test]
fn adaptive_promotion_boundaries_match_reference_under_fuel_sweep() {
    // A loopy kernel: enough work per run that fuel budgets can land
    // mid-run, not just on call boundaries.
    let sts = vec![
        St::Loop(4, vec![St::Assign(0, 0, Val::Var(0), Val::Param)]),
        St::Assign(1, 2, Val::Var(0), Val::Rtc),
    ];
    let src = program_for(&sts);
    // Thresholds 2/4 inside a six-run sequence: runs 1-2 execute on
    // tier 0, run 3 is the fuse-promotion run, run 5 the
    // thread-promotion run, run 6 steady-state threaded. Swept both
    // synchronously and with the background worker, where the fuel
    // budgets additionally straddle in-flight translation swaps.
    let ps: Vec<i64> = vec![7, -3, 11, 2, 9, -5];
    for background in [false, true] {
        let adaptive = ExecEngine::Adaptive {
            fuse_after: 2,
            thread_after: 4,
            background,
        };
        let (reference, _) = observe_run_sequence(&src, ENGINES[0], None, &ps);
        let (got, promotions) = observe_run_sequence(&src, adaptive, None, &ps);
        assert_eq!(
            got, reference,
            "unlimited-fuel trace diverges (background: {background})"
        );
        assert!(
            promotions >= 2,
            "six runs must cross both tier boundaries, saw {promotions} promotions"
        );
        for fuel in boundary_budgets(&reference) {
            let (reference, _) = observe_run_sequence(&src, ENGINES[0], Some(fuel), &ps);
            let (got, _) = observe_run_sequence(&src, adaptive, Some(fuel), &ps);
            assert_eq!(
                got, reference,
                "adaptive (background: {background}) diverges at fuel {fuel}"
            );
        }
    }
}

#[test]
fn fault_during_promotion_triggering_run_matches_reference() {
    // `v0 = r / p` traps with DivideByZero exactly when p == 0. With
    // fuse_after == 2 the third run executes under the just-promoted
    // fused tier; passing p == 0 there faults mid-way through that
    // promotion-triggering run. Later runs re-enter the promoted
    // function after the fault.
    let sts = vec![
        St::Loop(2, vec![St::Assign(1, 0, Val::Var(1), Val::Param)]),
        St::Assign(0, 5, Val::Rtc, Val::Param),
    ];
    let src = program_for(&sts);
    let ps: Vec<i64> = vec![7, 5, 0, 3, 0, 8, 6];
    for engine in [
        ExecEngine::Adaptive {
            fuse_after: 2,
            thread_after: 4,
            background: false,
        },
        // Same sequence with the fault on the thread-promotion run.
        ExecEngine::Adaptive {
            fuse_after: 1,
            thread_after: 2,
            background: false,
        },
        // Both again with the background worker: a fault mid-way
        // through the promotion-triggering run can land while that
        // run's translation is still in flight.
        ExecEngine::Adaptive {
            fuse_after: 2,
            thread_after: 4,
            background: true,
        },
        ExecEngine::Adaptive {
            fuse_after: 1,
            thread_after: 2,
            background: true,
        },
    ] {
        let (reference, _) = observe_run_sequence(&src, ENGINES[0], None, &ps);
        let (got, promotions) = observe_run_sequence(&src, engine, None, &ps);
        assert!(
            reference
                .iter()
                .filter(|o| o.result == Err(VmError::DivideByZero))
                .count()
                == 2,
            "both p == 0 runs must trap"
        );
        assert_eq!(got, reference, "{} diverges", engine_label(engine));
        assert!(promotions >= 1, "the trapping sequence still promotes");
        // The trap must not wedge tiering: sweep fuel across the
        // faulting trace too.
        for fuel in boundary_budgets(&reference).into_iter().step_by(3) {
            let (reference, _) = observe_run_sequence(&src, ENGINES[0], Some(fuel), &ps);
            let (got, _) = observe_run_sequence(&src, engine, Some(fuel), &ps);
            assert_eq!(
                got,
                reference,
                "{} diverges at fuel {fuel}",
                engine_label(engine)
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Stale-code composition: the translation cache must never outlive the
// code it shadows.
// ---------------------------------------------------------------------------

/// Source whose `mk(n)` compiles a distinct closure per `n` (the
/// `$`-bound seed changes the fingerprint), so a small code budget
/// eventually forces LRU eviction of the earliest result.
const EVICT_SRC: &str = r#"
int seed = 0;
long mk(int n) {
    seed = n;
    int cspec c = `(
        $seed * 3 + $seed * 5 + $seed * 7 + $seed * 9 +
        $seed * 11 + $seed * 13 + $seed * 17 + $seed * 19 +
        $seed * 23 + $seed * 29 + $seed * 31 + $seed * 37);
    return (long)compile(c, int);
}
int run(long fp) {
    int (*g)(void) = (int (*)(void))fp;
    return (*g)();
}
"#;

#[test]
fn evicted_code_faults_stale_with_warm_translation_cache() {
    let mut s = Session::new(
        EVICT_SRC,
        Config {
            code_budget: Some(256),
            ..Config::default()
        },
    )
    .expect("compiles");
    assert!(matches!(s.vm.engine(), ExecEngine::Adaptive { .. }));
    let fp1 = s.call("mk", &[1]).expect("first compile");
    // Warm the translation cache on fp1 before evicting it: under the
    // default adaptive thresholds a few repeat runs promote the helper
    // past tier 0, which forces a translation.
    let expect1: u64 = (3 + 5 + 7 + 9 + 11 + 13 + 17 + 19 + 23 + 29 + 31 + 37) as u64;
    for _ in 0..4 {
        assert_eq!(s.call("run", &[fp1]).expect("warm run"), expect1);
    }
    assert!(s.metrics().exec.translations >= 1, "fp1 was translated");
    assert!(
        s.metrics().adaptive.promotions >= 1,
        "repeat runs promoted a function"
    );
    // Distinct closures until budget pressure evicts the LRU entry —
    // which is fp1: inserted earliest, never looked up again (`run`
    // executes it but does not touch the compile cache). Probe
    // immediately, while its range is still on the free list; the
    // warm translation must not mask the fault.
    let mut n = 2u64;
    while s.metrics().cache.evictions == 0 {
        s.call("mk", &[n]).expect("later compile");
        n += 1;
        assert!(n < 1000, "budget never forced an eviction");
    }
    match s.call("run", &[fp1]) {
        Err(Error::Vm(VmError::StaleCode(addr))) => assert_eq!(addr, fp1),
        other => panic!("expected StaleCode({fp1:#x}), got {other:?}"),
    }
}

#[test]
fn placement_jitter_composes_with_predecoding() {
    // Same program, jittered code layout: results and modeled cycles
    // must not depend on where functions land.
    let sts = vec![St::Loop(4, vec![St::Assign(0, 0, Val::Var(0), Val::Rtc)])];
    let src = program_for(&sts);
    let mut base = None;
    for jitter in [None, Some(7), Some(1234)] {
        let mut s = Session::new(
            &src,
            Config {
                placement_jitter: jitter,
                ..Config::default()
            },
        )
        .expect("compiles");
        let fp = s.call("dyn_compile", &[13]).expect("compiles dyn");
        // Repeat runs climb the adaptive tiers, so the predecoded fast
        // path is exercised regardless of where the code landed.
        let mut got = 0;
        for _ in 0..3 {
            got = s.call("dyn_run", &[fp, 5]).expect("runs");
        }
        let cycles = s.cycles();
        match base {
            None => base = Some((got, cycles)),
            Some((g, _c)) => {
                assert_eq!(got, g, "jitter {jitter:?} changed the result");
            }
        }
        assert!(s.metrics().exec.fast_insns > 0, "predecoded path used");
    }
}
