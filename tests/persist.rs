//! End-to-end semantics of the persistent cross-process code cache:
//! a session's dynamic compiles survive process death (simulated by
//! dropping the session) and warm-start the next process from disk;
//! the on-disk store is single-writer; entries written under a
//! different static program (different ABI salt) are rejected cold;
//! and artifacts loaded from disk still honor the in-memory
//! invalidation protocol (`VmError::StaleCode`, never stale bytes).

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use tickc::tickc_core::{Config, Error, Session, SharedArtifacts};
use tickc::vm::VmError;

/// One dynamic-compilation site specializing on `$n`.
const MAKE: &str = r#"
long make(int n) {
    int vspec x = param(int, 0);
    int cspec c = `(x * $n + $n);
    return (long)compile(c, int);
}
"#;

/// A different static program (two entry points, different globals) so
/// its ABI salt cannot collide with `MAKE`'s.
const OTHER: &str = r#"
int bias = 11;
long mk_a(int n) {
    int cspec c = `($n + $bias);
    return (long)compile(c, int);
}
long mk_b(int n) {
    int cspec c = `($n * $bias);
    return (long)compile(c, int);
}
"#;

/// Fresh store path per test invocation (tests run concurrently).
fn store_path(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("tcc-e2e-{tag}-{}-{n}.tccp", std::process::id()))
}

fn cleanup(path: &Path) {
    let _ = std::fs::remove_file(path);
    let mut lock = path.to_path_buf().into_os_string();
    lock.push(".lock");
    let _ = std::fs::remove_file(lock);
}

fn persist_session(src: &str, path: &Path) -> Session {
    Session::new(
        src,
        Config {
            persist_path: Some(path.to_path_buf()),
            ..Config::default()
        },
    )
    .expect("compiles")
}

#[test]
fn warm_start_answers_compiles_from_disk() {
    let path = store_path("warm");

    // "Process 1": compile three closures, record results, die.
    let mut results = Vec::new();
    {
        let mut s = persist_session(MAKE, &path);
        for n in [3u64, 9, 12] {
            let addr = s.call("make", &[n]).expect("compiles");
            results.push(s.call_addr(addr, &[5]).expect("runs"));
        }
        let m = s.metrics();
        assert_eq!(m.dynamic.compiles, 3, "cold process compiles everything");
        assert_eq!(m.persist.disk_hits, 0);
        assert_eq!(m.persist.disk_misses, 3);
        // Drop flushes the dirty store and releases the writer lock.
    }
    assert!(path.exists(), "store file written on process exit");

    // "Process 2": the same requests are answered from disk — zero
    // dynamic compiles, bit-identical results.
    {
        let mut s = persist_session(MAKE, &path);
        for (i, n) in [3u64, 9, 12].iter().enumerate() {
            let addr = s.call("make", &[*n]).expect("warm compile");
            assert_eq!(s.call_addr(addr, &[5]).expect("runs"), results[i]);
        }
        let m = s.metrics();
        assert_eq!(m.dynamic.compiles, 0, "warm process must not recompile");
        assert_eq!(m.persist.disk_hits, 3);
        assert_eq!(m.persist.corrupt_rejected, 0);
        assert_eq!(m.persist.version_rejected, 0);
        assert!((m.persist.disk_hit_rate() - 1.0).abs() < 1e-9);
        // Disk hits count as cache hits and credit compile-minus-load.
        assert_eq!(m.cache.hits, 3);
        // A closure the store has never seen is still a disk miss that
        // compiles fresh and is re-recorded.
        let addr = s.call("make", &[77]).expect("fresh compile");
        assert_eq!(s.call_addr(addr, &[5]).unwrap(), 5 * 77 + 77);
        assert_eq!(s.metrics().persist.disk_misses, 1);
        s.flush_persist().expect("writer flush succeeds");
    }

    // "Process 3" sees all four.
    {
        let mut s = persist_session(MAKE, &path);
        for n in [3u64, 9, 12, 77] {
            s.call("make", &[n]).expect("warm compile");
        }
        assert_eq!(s.metrics().persist.disk_hits, 4);
        assert_eq!(s.metrics().dynamic.compiles, 0);
    }
    cleanup(&path);
}

#[test]
fn different_static_program_rejects_the_store_cold() {
    let path = store_path("salt");
    {
        let mut s = persist_session(MAKE, &path);
        s.call("make", &[9]).expect("compiles");
    }

    // A process running a *different* static program opens the same
    // path: the ABI salt differs, so the whole file is rejected as a
    // version mismatch — never served.
    {
        let mut s = persist_session(OTHER, &path);
        let m = s.metrics();
        assert_eq!(m.persist.version_rejected, 1, "salt mismatch rejected");
        assert_eq!(m.persist.entries_loaded, 0);
        let addr = s.call("mk_a", &[9]).expect("fresh compile");
        assert_eq!(s.call_addr(addr, &[]).unwrap(), 20);
        assert_eq!(s.metrics().dynamic.compiles, 1);
        assert_eq!(s.metrics().persist.disk_hits, 0);
    }
    cleanup(&path);
}

#[test]
fn two_processes_share_one_store_under_a_single_writer() {
    let path = store_path("twoproc");

    // "Process A": its own SharedArtifacts pool, holds the writer
    // lock, publishes two artifacts, flushes mid-life.
    let shared_a = SharedArtifacts::unbounded();
    let mut a = Session::new(
        MAKE,
        Config {
            shared: Some(Arc::clone(&shared_a)),
            persist_path: Some(path.clone()),
            ..Config::default()
        },
    )
    .expect("compiles");
    let fa = a.call("make", &[9]).expect("compiles");
    let ra = a.call_addr(fa, &[5]).expect("runs");
    a.call("make", &[3]).expect("compiles");
    a.flush_persist().expect("writer flushes");

    // "Process B": a second SharedArtifacts pool over the same path,
    // opened while A is still alive. The lock file makes it a reader:
    // it serves A's flushed entries but cannot clobber the store.
    let shared_b = SharedArtifacts::unbounded();
    let mut b = Session::new(
        MAKE,
        Config {
            shared: Some(Arc::clone(&shared_b)),
            persist_path: Some(path.clone()),
            ..Config::default()
        },
    )
    .expect("compiles");
    assert_eq!(
        b.metrics().persist.entries_loaded,
        2,
        "reader sees the flush"
    );
    let fb = b.call("make", &[9]).expect("disk fill");
    assert_eq!(b.call_addr(fb, &[5]).expect("runs"), ra);
    assert_eq!(b.metrics().persist.disk_hits, 1);
    assert_eq!(b.dyn_stats().compiles, 0, "B never compiled");
    assert_eq!(shared_b.metrics().published, 0);
    let err = b.flush_persist().expect_err("reader must not flush");
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);

    // Invalidation still composes: churning the disk-loaded artifact
    // out of B's pool faults the executing session with StaleCode.
    let fp = shared_b.sample_fingerprint(0).expect("one resident");
    assert!(shared_b.invalidate(&fp));
    match b.call_addr(fb, &[5]) {
        Err(Error::Vm(VmError::StaleCode(at))) => assert_eq!(at, fb),
        other => panic!("expected StaleCode fault, got {other:?}"),
    }
    // And the next request recovers (recompile or re-fill; A's store
    // entry is tombstoned only in B's in-memory view).
    let fb2 = b.call("make", &[9]).expect("recovers");
    assert_eq!(b.call_addr(fb2, &[5]).expect("runs"), ra);

    drop(a);
    drop(shared_a);

    // With A gone the lock is released: a third pool opens as writer
    // and serves everything A persisted.
    let shared_c = SharedArtifacts::unbounded();
    let mut c = Session::new(
        MAKE,
        Config {
            shared: Some(Arc::clone(&shared_c)),
            persist_path: Some(path.clone()),
            ..Config::default()
        },
    )
    .expect("compiles");
    c.call("make", &[9]).expect("disk fill");
    c.call("make", &[3]).expect("disk fill");
    assert_eq!(c.metrics().persist.disk_hits, 2);
    assert_eq!(c.dyn_stats().compiles, 0);
    c.flush_persist().expect("writer again");

    drop(b);
    drop(c);
    drop(shared_b);
    drop(shared_c);
    cleanup(&path);
}
