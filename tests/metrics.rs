//! Invariants of the unified observability layer: `Session::metrics()`
//! must report internally consistent, monotonically accumulating
//! numbers for every phase of the pipeline, and the derived
//! per-instruction codegen cost must land in a sane band.

use tcc::{Backend, Config, Session, Strategy};

/// A program with one dynamic compilation site.
const SRC: &str = r#"
int make(int n) {
    int cspec c = `($n * 3 + 4);
    int (*f)(void) = compile(c, int);
    return (*f)();
}
"#;

fn session(backend: Backend) -> Session {
    Session::new(
        SRC,
        Config {
            backend,
            ..Config::default()
        },
    )
    .expect("compiles")
}

fn all_backends() -> Vec<Backend> {
    vec![
        Backend::Vcode { unchecked: false },
        Backend::Vcode { unchecked: true },
        Backend::Icode {
            strategy: Strategy::LinearScan,
        },
        Backend::Icode {
            strategy: Strategy::GraphColor,
        },
    ]
}

#[test]
fn static_phases_are_populated_at_construction() {
    let s = session(Backend::default());
    let m = s.metrics();
    assert!(m.frontend.parse_sema_ns > 0, "front end took no time?");
    assert_eq!(m.frontend.source_bytes, SRC.len() as u64);
    assert!(
        m.static_compile.lower_ns > 0,
        "static lowering took no time?"
    );
    assert!(m.static_compile.static_insns > 0, "image has no code?");
    // Nothing ran yet: dynamic and VM counters start at zero.
    assert_eq!(m.dynamic.compiles, 0);
    assert_eq!(m.vm.insns, 0);
    assert_eq!(m.vm.hcalls, 0);
}

#[test]
fn dynamic_counters_accumulate_monotonically() {
    for backend in all_backends() {
        // Disable memoization: this test characterizes what one *real*
        // compile adds to the counters, and all three rounds specialize
        // to the same `$n` (with the cache on, rounds 2-3 would be hits
        // and add nothing — see tests/cache.rs for those semantics).
        let mut s = Session::new(
            SRC,
            Config {
                backend: backend.clone(),
                cache: false,
                ..Config::default()
            },
        )
        .expect("compiles");
        let mut prev_compiles = 0;
        let mut prev_total = 0;
        let mut prev_insns = 0;
        for round in 1..=3u64 {
            assert_eq!(s.call("make", &[12]).unwrap(), 40, "{backend:?}");
            let d = s.metrics().dynamic;
            assert_eq!(d.compiles, round, "{backend:?}");
            assert!(d.generated_insns > prev_insns, "{backend:?} round {round}");
            assert!(d.total_ns > prev_total, "{backend:?} round {round}");
            assert!(d.closures >= round, "{backend:?}: walked no closures");
            prev_compiles = d.compiles;
            prev_total = d.total_ns;
            prev_insns = d.generated_insns;
        }
        assert_eq!(prev_compiles, 3);
    }
}

#[test]
fn walk_and_phase_times_fit_inside_total() {
    for backend in all_backends() {
        let mut s = session(backend.clone());
        for _ in 0..3 {
            s.call("make", &[5]).unwrap();
        }
        let d = s.metrics().dynamic;
        assert!(
            d.generated_insns > 0,
            "{backend:?}: compile generated nothing"
        );
        assert!(
            d.walk_ns <= d.total_ns,
            "{backend:?}: walk {} ns exceeds total {} ns",
            d.walk_ns,
            d.total_ns
        );
        // The per-phase breakdown is a subdivision of codegen time:
        // phases happen strictly inside the `compile` host call.
        assert!(
            d.phases.total_ns() <= d.total_ns,
            "{backend:?}: phases {} ns exceed total {} ns",
            d.phases.total_ns(),
            d.total_ns
        );
        match backend {
            Backend::Icode { .. } => {
                assert!(d.ir_insns > 0, "{backend:?}: no IR recorded");
                assert!(d.phases.total_ns() > 0, "{backend:?}: phases not timed");
            }
            Backend::Vcode { .. } => {
                // One-pass: no separate phase pipeline.
                assert_eq!(d.phases.total_ns(), 0, "{backend:?}");
                assert_eq!(d.ir_insns, 0, "{backend:?}");
            }
        }
    }
}

#[test]
fn vm_counters_track_execution_and_hcalls() {
    let mut s = session(Backend::default());
    s.call("make", &[1]).unwrap();
    let m1 = s.metrics();
    assert!(m1.vm.insns > 0);
    assert!(
        m1.vm.cycles >= m1.vm.insns,
        "every insn costs at least one cycle"
    );
    // `compile` itself is an hcall; the arena/vspec setup adds more.
    assert!(m1.vm.hcalls > 0, "compile should trap to the host");
    s.call("make", &[2]).unwrap();
    let m2 = s.metrics();
    assert!(m2.vm.insns > m1.vm.insns);
    assert!(m2.vm.hcalls > m1.vm.hcalls);
    s.reset_counters();
    let m3 = s.metrics();
    assert_eq!(m3.vm.insns, 0);
    assert_eq!(m3.vm.cycles, 0);
    assert_eq!(m3.vm.hcalls, 0);
    // Dynamic-compilation stats survive a counter reset (they describe
    // accumulated codegen work, not the current measurement window).
    assert_eq!(m3.dynamic.compiles, 2);
}

#[test]
fn codegen_cost_per_insn_is_in_a_sane_band() {
    // The paper reports roughly 100-500 cycles per generated
    // instruction on a SPARCstation. Host wall-clock translated through
    // the VM's modeled cycle time is far noisier (and debug builds are
    // ~20x slower than release), so the assertion is a wide sanity band
    // rather than the paper's figure: the metric must be positive,
    // finite, and not absurdly large.
    let upper = if cfg!(debug_assertions) { 1e9 } else { 1e7 };
    for backend in all_backends() {
        let mut s = session(backend.clone());
        for _ in 0..5 {
            s.call("make", &[9]).unwrap();
        }
        let d = s.metrics().dynamic;
        let ns = d.ns_per_generated_insn();
        assert!(ns.is_finite() && ns > 0.0, "{backend:?}: ns/insn = {ns}");
        assert!(ns < upper, "{backend:?}: ns/insn = {ns} out of band");
        // With a plausible 1ns cycle the cycles/insn figure stays
        // positive and finite too.
        let cyc = d.cycles_per_generated_insn(1.0);
        assert!(cyc.is_finite() && cyc > 0.0, "{backend:?}");
    }
}

#[test]
fn session_metrics_serialize_to_json() {
    let mut s = session(Backend::Icode {
        strategy: Strategy::LinearScan,
    });
    s.call("make", &[3]).unwrap();
    let text = s.metrics().to_json().to_string();
    for key in [
        "frontend",
        "static",
        "dynamic",
        "vm",
        "phases",
        "alloc_ns",
        "hcalls",
        "generated_insns",
    ] {
        assert!(
            text.contains(&format!("\"{key}\"")),
            "missing {key} in {text}"
        );
    }
}
