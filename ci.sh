#!/bin/sh
# The repo's CI gate, runnable locally:
#
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. tier-1 tests      (release build + full test suite)
#   4. docs              (cargo doc, warnings are errors)
#   5. suite smoke run   (one small benchmark through every compilation
#                         path — two static back ends and all three
#                         dynamic back ends must agree on the answer)
#   6. cache smoke run   (the repeat-compile sweep with memoization on:
#                         hit economics + pointer stability end-to-end)
#   7. exec smoke run    (the five execution engines — decode-per-step,
#                         predecoded, predecoded+fused, direct-threaded,
#                         adaptive — over the loop-heavy kernels with
#                         the observational-equivalence asserts live,
#                         release mode)
#   8. adaptive smoke    (the reuse sweep's cold-start cells — including
#                         the background-worker engine — with the
#                         equivalence asserts live, release mode)
#   9. adaptive tests    (the tier-promotion property suite, explicitly,
#                         so a tiering regression names itself)
#  10. worker tests      (the background-translation pipeline: async
#                         promotion equivalence, stale-epoch discard,
#                         worker shutdown — explicitly, so a pipeline
#                         regression names itself)
#  11. superinstruction/scheduler tests (release: the threaded
#                         engine's combined-handler suite, the
#                         mid-group fuel sweeps in the differential
#                         harness, and the DAG-scheduler preservation
#                         proptests — so a fusion regression names
#                         itself)
#  12. serve smoke       (the multi-tenant pool: Zipfian replay over
#                         1/2/4 worker sessions sharing one artifact
#                         cache, with the cross-pool bit-identical
#                         digest and per-request differential asserts
#                         live, release mode)
#  13. serve tests       (the concurrency suite, explicitly and in
#                         release: shared-compile dedup, cross-thread
#                         StaleCode faulting, eviction under budget,
#                         in-flight-slot interleavings — so a
#                         concurrency regression names itself)
#  14. persist smoke     (the persistent on-disk code cache: a cold
#                         process compiles a cell sweep, exits, and a
#                         warm process answers the identical sweep
#                         from disk with zero recompiles and
#                         bit-identical results, release mode)
#  15. persist tests     (the durability suite, explicitly and in
#                         release: store round-trips, corruption /
#                         truncation / version-salt rejection,
#                         single-writer locking, warm-start e2e and
#                         post-load StaleCode faulting — so a
#                         durability regression names itself)
#  16. exec regression   (./run_benches.sh --check: full-rep exec bench
#                         compared against baselines/BENCH_exec.json;
#                         fails on a >30% drop in any gated speedup
#                         column — fused, threaded, adaptive, or the
#                         threaded engine's dispatch_reduction — and
#                         gates the tiering pipeline's
#                         tail_p99_improvement column the same way when
#                         both BENCH_adaptive.json files are present,
#                         serve throughput/p99 plus the largest
#                         pool's hit-rate/compiles-per-unique bounds
#                         when both BENCH_serve.json files are present,
#                         and persist warm-start speedups — relative
#                         to baseline and against the absolute 5x
#                         floor — when both BENCH_persist.json files
#                         are present)
#
# Fails fast: the first failing step aborts with its exit code.
set -eu
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test =="
cargo test -q --workspace

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== suite smoke (all back ends must agree) =="
cargo run -p tcc-suite --bin suite --release -- smoke

echo "== suite cache (memoized compiles stay correct) =="
cargo run -p tcc-suite --bin suite --release -- cache

echo "== suite exec --smoke (engines observationally identical) =="
cargo run -p tcc-suite --bin suite --release -- exec --smoke

echo "== suite adaptive --smoke (tiering observationally identical) =="
cargo run -p tcc-suite --bin suite --release -- adaptive --smoke

echo "== adaptive property tests =="
cargo test -q --release --test adaptive

echo "== background translation worker tests =="
cargo test -q --release -p tcc-vm -- background epoch_bump
cargo test -q --release --test exec_differential -- adaptive fault_during

echo "== superinstruction + DAG-scheduler tests =="
cargo test -q --release -p tcc-vm -- superinstruction
cargo test -q --release --test exec_differential -- mid_group
cargo test -q --release --test peephole_preserve

echo "== suite serve --smoke (pool replay bit-identical across sizes) =="
cargo run -p tcc-suite --bin suite --release -- serve --smoke

echo "== serve concurrency tests =="
cargo test -q --release -p tcc-serve
cargo test -q --release -p tcc --test shared_serve
cargo test -q --release -p tcc-cache shared

echo "== suite persist --smoke (warm restart answers from disk) =="
cargo run -p tcc-suite --bin suite --release -- persist --smoke

echo "== persist durability tests =="
cargo test -q --release -p tcc-cache persist
cargo test -q --release --test persist

echo "== exec regression gate (speedups vs baselines/) =="
./run_benches.sh --check

echo "CI_OK"
