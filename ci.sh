#!/bin/sh
# The repo's CI gate, runnable locally:
#
#   1. formatting        (cargo fmt --check)
#   2. lints             (cargo clippy, warnings are errors)
#   3. tier-1 tests      (release build + full test suite)
#   4. suite smoke run   (one small benchmark through every compilation
#                         path — two static back ends and all three
#                         dynamic back ends must agree on the answer)
#
# Fails fast: the first failing step aborts with its exit code.
set -eu
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test =="
cargo test -q --workspace

echo "== suite smoke (all back ends must agree) =="
cargo run -p tcc-suite --bin suite --release -- smoke

echo "CI_OK"
