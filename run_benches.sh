#!/bin/sh
# Regenerates every table/figure and runs the criterion benches,
# appending everything to bench_output.txt. Each bench is isolated: a
# failure is reported loudly (both to stderr and in the log) and the
# remaining benches still run; the script exits non-zero if any failed.
# Afterwards the suite binary emits the machine-readable BENCH_*.json
# reports next to bench_output.txt.
set -u
cd /root/repo
: > bench_output.txt
failed=""
for b in table1 figure4 figure5 figure6 figure7 blur codegen regalloc ablations; do
  echo "=== bench: $b ===" >> bench_output.txt
  if ! cargo bench -p tcc-bench --bench "$b" >> bench_output.txt 2>&1; then
    echo "BENCH FAILED: $b (see bench_output.txt)" >&2
    echo "=== bench FAILED: $b ===" >> bench_output.txt
    failed="$failed $b"
  fi
done

echo "=== suite --json ===" >> bench_output.txt
if ! cargo run -p tcc-suite --bin suite --release -- all --small --json \
    >> bench_output.txt 2>&1; then
  echo "BENCH FAILED: suite --json (see bench_output.txt)" >&2
  failed="$failed suite-json"
fi

echo "=== suite cache --json ===" >> bench_output.txt
if ! cargo run -p tcc-suite --bin suite --release -- cache --json \
    >> bench_output.txt 2>&1; then
  echo "BENCH FAILED: suite cache --json (see bench_output.txt)" >&2
  failed="$failed suite-cache-json"
fi

if [ -n "$failed" ]; then
  echo "BENCHES_FAILED:$failed" >&2
  exit 1
fi
echo BENCHES_DONE
