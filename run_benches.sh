#!/bin/sh
# Regenerates every table/figure, runs the criterion benches, and emits
# the machine-readable BENCH_*.json reports, appending everything to
# bench_output.txt. Each bench is isolated: a failure is reported loudly
# (both to stderr and in the log) and the remaining benches still run;
# the script exits non-zero if any failed.
#
#   ./run_benches.sh            full run (criterion + calibrated suite)
#   ./run_benches.sh --quick    skip criterion; suite JSON emissions
#                               only, with the exec, adaptive, serve,
#                               and persist experiments at smoke rep
#                               counts (equivalence asserts live,
#                               timings not meaningful)
#   ./run_benches.sh --check    regression gate: run the exec,
#                               adaptive, serve, and persist
#                               experiments at full rep counts, then
#                               compare the fresh BENCH_exec.json
#                               speedups, the fresh
#                               BENCH_adaptive.json tail ratios, the
#                               fresh BENCH_serve.json throughput/p99,
#                               and the fresh BENCH_persist.json
#                               warm-start speedups against baselines/
#                               (fails on a >30% drop in any gated
#                               speedup column — fused, threaded,
#                               adaptive — a >50% drop in
#                               tail_p99_improvement, the serve
#                               throughput ratio, or a persist
#                               warm_speedup, a >75% drop in the serve
#                               p99 ratio (the serve tail is bimodal
#                               and load-swung), a largest-pool serve
#                               hit rate below 0.9, serve
#                               compiles-per-unique above 1, or any
#                               persist warm_speedup below the
#                               absolute 5x floor; one retry absorbs
#                               machine noise)
set -u
cd /root/repo

quick=0
check=0
for a in "$@"; do
  case "$a" in
    --quick) quick=1 ;;
    --check) check=1 ;;
    *) echo "usage: $0 [--quick|--check]" >&2; exit 2 ;;
  esac
done

: > bench_output.txt
failed=""

if [ "$check" -eq 1 ]; then
  # Regression gate only: fresh full-rep exec run vs committed baseline.
  # Wall-clock ratios are load-sensitive, so a failed comparison gets
  # one re-measure before the gate fails for real.
  echo "=== exec regression gate ===" >> bench_output.txt
  for attempt in 1 2; do
    cargo run -p tcc-suite --bin suite --release -- exec --json \
      >> bench_output.txt 2>&1 || { echo "BENCH FAILED: exec" >&2; exit 1; }
    cargo run -p tcc-suite --bin suite --release -- adaptive --json \
      >> bench_output.txt 2>&1 || { echo "BENCH FAILED: adaptive" >&2; exit 1; }
    cargo run -p tcc-suite --bin suite --release -- serve --json \
      >> bench_output.txt 2>&1 || { echo "BENCH FAILED: serve" >&2; exit 1; }
    cargo run -p tcc-suite --bin suite --release -- persist --json \
      >> bench_output.txt 2>&1 || { echo "BENCH FAILED: persist" >&2; exit 1; }
    if cargo run -p tcc-suite --bin suite --release -- exec-check \
        BENCH_exec.json baselines/BENCH_exec.json \
        >> bench_output.txt 2>&1; then
      tail -n 12 bench_output.txt
      echo BENCHES_DONE
      exit 0
    fi
    echo "exec-check attempt $attempt failed" >> bench_output.txt
  done
  echo "BENCHES_FAILED: exec-check (see bench_output.txt)" >&2
  tail -n 30 bench_output.txt >&2
  exit 1
fi

if [ "$quick" -eq 0 ]; then
  for b in table1 figure4 figure5 figure6 figure7 blur codegen regalloc ablations; do
    echo "=== bench: $b ===" >> bench_output.txt
    if ! cargo bench -p tcc-bench --bench "$b" >> bench_output.txt 2>&1; then
      echo "BENCH FAILED: $b (see bench_output.txt)" >&2
      echo "=== bench FAILED: $b ===" >> bench_output.txt
      failed="$failed $b"
    fi
  done
fi

# suite <experiment> [extra flags...] — appends to the log and writes
# BENCH_<experiment>.json into the repo root.
run_suite() {
  label="$1"; shift
  echo "=== suite $label ===" >> bench_output.txt
  if ! cargo run -p tcc-suite --bin suite --release -- "$@" --json \
      >> bench_output.txt 2>&1; then
    echo "BENCH FAILED: suite $label (see bench_output.txt)" >&2
    failed="$failed suite-$label"
  fi
}

run_suite all all --small
run_suite cache cache
if [ "$quick" -eq 0 ]; then
  run_suite exec exec
  run_suite adaptive adaptive
  run_suite serve serve
  run_suite persist persist
else
  run_suite exec exec --smoke
  run_suite adaptive adaptive --smoke
  run_suite serve serve --smoke
  run_suite persist persist --smoke
fi

if [ -n "$failed" ]; then
  echo "BENCHES_FAILED:$failed" >&2
  exit 1
fi
echo BENCHES_DONE
