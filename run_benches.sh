#!/bin/sh
# Regenerates every table/figure and runs the criterion benches,
# appending everything to bench_output.txt. Invoked in chunks so each
# stays within the sandbox command timeout.
set -e
cd /root/repo
: > bench_output.txt
for b in table1 figure4 figure5 figure6 figure7 blur codegen regalloc ablations; do
  echo "=== bench: $b ===" >> bench_output.txt
  cargo bench -p tcc-bench --bench "$b" >> bench_output.txt 2>&1
done
echo BENCHES_DONE
