#!/bin/sh
# Regenerates every table/figure, runs the criterion benches, and emits
# the machine-readable BENCH_*.json reports, appending everything to
# bench_output.txt. Each bench is isolated: a failure is reported loudly
# (both to stderr and in the log) and the remaining benches still run;
# the script exits non-zero if any failed.
#
#   ./run_benches.sh            full run (criterion + calibrated suite)
#   ./run_benches.sh --quick    skip criterion; suite JSON emissions
#                               only, with the exec experiment at smoke
#                               rep counts (equivalence asserts live,
#                               timings not meaningful)
set -u
cd /root/repo

quick=0
for a in "$@"; do
  case "$a" in
    --quick) quick=1 ;;
    *) echo "usage: $0 [--quick]" >&2; exit 2 ;;
  esac
done

: > bench_output.txt
failed=""

if [ "$quick" -eq 0 ]; then
  for b in table1 figure4 figure5 figure6 figure7 blur codegen regalloc ablations; do
    echo "=== bench: $b ===" >> bench_output.txt
    if ! cargo bench -p tcc-bench --bench "$b" >> bench_output.txt 2>&1; then
      echo "BENCH FAILED: $b (see bench_output.txt)" >&2
      echo "=== bench FAILED: $b ===" >> bench_output.txt
      failed="$failed $b"
    fi
  done
fi

# suite <experiment> [extra flags...] — appends to the log and writes
# BENCH_<experiment>.json into the repo root.
run_suite() {
  label="$1"; shift
  echo "=== suite $label ===" >> bench_output.txt
  if ! cargo run -p tcc-suite --bin suite --release -- "$@" --json \
      >> bench_output.txt 2>&1; then
    echo "BENCH FAILED: suite $label (see bench_output.txt)" >&2
    failed="$failed suite-$label"
  fi
}

run_suite all all --small
run_suite cache cache
if [ "$quick" -eq 0 ]; then
  run_suite exec exec
else
  run_suite exec exec --smoke
fi

if [ -n "$failed" ]; then
  echo "BENCHES_FAILED:$failed" >&2
  exit 1
fi
echo BENCHES_DONE
