#!/bin/sh
set -e
cd /root/repo
for b in codegen regalloc ablations; do
  echo "=== bench: $b ===" >> bench_output.txt
  cargo bench -p tcc-bench --bench "$b" >> bench_output.txt 2>&1
done
echo BENCHES2_DONE
