#!/bin/sh
# Second chunk of the bench run (see run_benches.sh): the compiler-side
# criterion benches, isolated per bench so one failure doesn't silence
# the rest.
set -u
cd /root/repo
failed=""
for b in codegen regalloc ablations; do
  echo "=== bench: $b ===" >> bench_output.txt
  if ! cargo bench -p tcc-bench --bench "$b" >> bench_output.txt 2>&1; then
    echo "BENCH FAILED: $b (see bench_output.txt)" >&2
    echo "=== bench FAILED: $b ===" >> bench_output.txt
    failed="$failed $b"
  fi
done
if [ -n "$failed" ]; then
  echo "BENCHES2_FAILED:$failed" >&2
  exit 1
fi
echo BENCHES2_DONE
